//! Portals-class interconnect model.
//!
//! The management protocols measured in the paper are dominated by message
//! rounds and bulk-transfer times, so the model captures exactly those
//! quantities: per-message wire latency (optionally topology-dependent),
//! per-NIC serialization (a NIC moves one transfer at a time, so concurrent
//! transfers through the same endpoint queue), and bandwidth-limited bulk
//! payload time. The model is deterministic and runs on the [`sim_core`]
//! kernel.

// BTreeMap keeps per-NIC state in a deterministically ordered container so
// no future iteration over it can leak hash order into event scheduling.
use std::collections::BTreeMap;

use sim_core::{Shared, Sim, SimDuration, SimTime};
use simtel::{Category, Telemetry};

use crate::cluster::NodeId;

/// Interconnect topology, used to derive per-message hop counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Uniform latency between any pair of distinct nodes.
    Flat,
    /// 3-D torus with the given dimensions (RedSky-style). Nodes are mapped
    /// to coordinates in row-major order; hop count is the Manhattan
    /// distance with wraparound.
    Torus3D {
        /// Torus dimensions (x, y, z); node ids map row-major.
        dims: (u32, u32, u32),
    },
}

impl Topology {
    /// Network hops between two nodes under this topology.
    ///
    /// For [`Topology::Torus3D`] node ids are mapped to coordinates
    /// row-major and **wrap modulo the torus volume**: an id `>= x*y*z`
    /// aliases the node at `id mod volume` axis-by-axis, so e.g. on a
    /// (4,4,4) torus `NodeId(64)` occupies the same coordinates as
    /// `NodeId(0)` and the hop count between them is 0 (they are distinct
    /// ids on the same router). Callers that consider out-of-volume ids an
    /// error should validate against the volume before calling; the wrap
    /// semantics here are deliberate so clusters whose node-id space is
    /// larger than one torus (e.g. staging nodes numbered past the compute
    /// partition) still get well-defined, symmetric distances.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        if a == b {
            return 0;
        }
        match *self {
            Topology::Flat => 1,
            Topology::Torus3D { dims } => {
                let ca = Self::coords(a, dims);
                let cb = Self::coords(b, dims);
                Self::axis_dist(ca.0, cb.0, dims.0)
                    + Self::axis_dist(ca.1, cb.1, dims.1)
                    + Self::axis_dist(ca.2, cb.2, dims.2)
            }
        }
    }

    fn coords(n: NodeId, dims: (u32, u32, u32)) -> (u32, u32, u32) {
        let id = n.0;
        let x = id % dims.0;
        let y = (id / dims.0) % dims.1;
        let z = (id / (dims.0 * dims.1)) % dims.2;
        (x, y, z)
    }

    fn axis_dist(a: u32, b: u32, dim: u32) -> u32 {
        let d = a.abs_diff(b);
        d.min(dim - d)
    }
}

/// Tunable constants of the interconnect model.
#[derive(Clone, Copy, Debug)]
pub struct NetworkConfig {
    /// Base one-way wire latency for the first hop.
    pub base_latency: SimDuration,
    /// Additional latency per extra hop.
    pub per_hop_latency: SimDuration,
    /// Sustained point-to-point bandwidth per NIC, bytes/second.
    pub bandwidth_bps: u64,
    /// Fixed software overhead charged to both endpoints per message
    /// (matching/event handling in the Portals stack).
    pub sw_overhead: SimDuration,
    /// Topology used for hop counts.
    pub topology: Topology,
}

impl NetworkConfig {
    /// Constants calibrated to the Cray XT4 SeaStar/Portals generation:
    /// ~6 µs small-message latency, ~1.6 GB/s sustained point-to-point.
    pub fn portals_xt4() -> Self {
        NetworkConfig {
            base_latency: SimDuration::from_micros(6),
            per_hop_latency: SimDuration::from_nanos(50),
            bandwidth_bps: 1_600_000_000,
            sw_overhead: SimDuration::from_micros(1),
            topology: Topology::Flat,
        }
    }

    /// Constants for RedSky's QDR InfiniBand 3-D torus: ~1.3 µs latency,
    /// ~3.2 GB/s.
    pub fn qdr_torus(dims: (u32, u32, u32)) -> Self {
        NetworkConfig {
            base_latency: SimDuration::from_micros(1),
            per_hop_latency: SimDuration::from_nanos(100),
            bandwidth_bps: 3_200_000_000,
            sw_overhead: SimDuration::from_nanos(500),
            topology: Topology::Torus3D { dims },
        }
    }

    /// Checks the config for values that would make the model ill-defined:
    /// zero bandwidth (divide-by-zero in [`NetworkConfig::wire_time`]) and
    /// zero torus dimensions (divide-by-zero in the coordinate mapping).
    ///
    /// [`Network::new`] calls this and panics with the error, so an invalid
    /// config fails loudly at construction instead of deep inside a
    /// transfer; builders that expose these fields (e.g.
    /// `ExperimentConfig::builder`) surface the same conditions as a
    /// `Result`.
    pub fn validate(&self) -> Result<(), NetConfigError> {
        if self.bandwidth_bps == 0 {
            return Err(NetConfigError::ZeroBandwidth);
        }
        if let Topology::Torus3D { dims } = self.topology {
            if dims.0 == 0 || dims.1 == 0 || dims.2 == 0 {
                return Err(NetConfigError::ZeroTorusDim);
            }
        }
        Ok(())
    }

    /// Pure wire time for `bytes` between `src` and `dst` with no queueing.
    ///
    /// The payload term is computed in `u128` with ceiling division, so it
    /// neither saturates for multi-exabyte payloads (`bytes * 1e9` overflows
    /// `u64` already at ~18.4 GB) nor rounds a sub-nanosecond payload down
    /// to zero; results past `u64::MAX` nanoseconds (~584 years) clamp.
    pub fn wire_time(&self, src: NodeId, dst: NodeId, bytes: u64) -> SimDuration {
        let hops = self.topology.hops(src, dst) as u64;
        let lat = self.base_latency + self.per_hop_latency * hops.saturating_sub(1);
        lat + payload_time(bytes, self.bandwidth_bps) + self.sw_overhead
    }
}

/// Error from [`NetworkConfig::validate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetConfigError {
    /// `bandwidth_bps` is zero; every payload-time division would panic.
    ZeroBandwidth,
    /// A `Torus3D` dimension is zero; the coordinate mapping is undefined.
    ZeroTorusDim,
}

impl std::fmt::Display for NetConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetConfigError::ZeroBandwidth => write!(f, "bandwidth_bps must be positive"),
            NetConfigError::ZeroTorusDim => write!(f, "torus dimensions must all be positive"),
        }
    }
}

impl std::error::Error for NetConfigError {}

/// Bandwidth-limited payload time: `ceil(bytes * 1e9 / bandwidth)` ns,
/// routed through [`sim_core::widemath`] so it cannot overflow, clamped
/// to `u64::MAX` ns.
///
/// Panics if `bandwidth_bps` is zero ([`NetworkConfig::validate`] rejects
/// such configs at construction).
pub(crate) fn payload_time(bytes: u64, bandwidth_bps: u64) -> SimDuration {
    assert!(bandwidth_bps > 0, "bandwidth must be positive");
    SimDuration::from_nanos(sim_core::widemath::mul_div_ceil(bytes, 1_000_000_000, bandwidth_bps))
}

#[derive(Clone, Copy, Debug, Default)]
struct NicState {
    tx_free: SimTime,
    rx_free: SimTime,
    tx_busy: SimDuration,
    rx_busy: SimDuration,
}

/// Aggregate traffic counters, for reporting and contention analysis.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Total messages delivered (control + bulk).
    pub messages: u64,
    /// Total payload bytes delivered.
    pub bytes: u64,
    /// Messages dropped by injected faults (down endpoints, message loss).
    pub dropped: u64,
}

/// An active NIC/link degradation on one node, installed by a fault layer
/// (see `simfault`). Factors apply to every transfer touching the node
/// until `until`, after which the entry is ignored (lazy expiry — the
/// network never schedules events of its own, so an installed degradation
/// is schedule-neutral).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Degradation {
    /// Multiplier on effective bandwidth, in (0, 1] (0.5 = half bandwidth).
    pub bandwidth_factor: f64,
    /// Multiplier on wire latency, >= 1 (2.0 = double latency).
    pub latency_factor: f64,
    /// Virtual time at which the degradation lifts.
    pub until: SimTime,
}

/// The interconnect. Lives in a [`Shared`] cell so completion callbacks can
/// reach it from inside kernel events.
///
/// # Fault hooks
///
/// The network carries three pieces of injectable fault state, all inert by
/// default so a run without faults is bit-identical to one built before
/// these hooks existed: a *node-down set* (consulted when a message is sent
/// and again when it would be delivered — a message in flight to a node
/// that crashes before delivery is dropped), per-node [`Degradation`]
/// factors folded into the effective wire time, and an optional
/// *loss sampler* closure consulted once per send (the sampler owns any
/// randomness, typically a seeded RNG in `simfault`, keeping the kernel's
/// own RNG untouched).
pub struct Network {
    cfg: NetworkConfig,
    nics: BTreeMap<NodeId, NicState>,
    stats: NetStats,
    telemetry: Telemetry,
    down: std::collections::BTreeSet<NodeId>,
    degraded: BTreeMap<NodeId, Degradation>,
    loss: Option<Box<dyn FnMut() -> bool>>,
    /// Cached per-NIC telemetry track names (`nicN.tx`, `nicN.rx`),
    /// allocated on a node's first transfer and reused thereafter.
    nic_tracks: BTreeMap<NodeId, (String, String)>,
    /// Cached drop-marker labels, keyed by (drop kind, node).
    drop_marks: BTreeMap<(&'static str, NodeId), String>,
}

/// A node's cached `(tx, rx)` telemetry track names.
fn track_pair(n: NodeId) -> (String, String) {
    // simlint: allow(alloc-in-hot-path, first touch of a NIC's track names; every later transfer reuses the cached pair)
    (format!("nic{}.tx", n.0), format!("nic{}.rx", n.0))
}

/// Shared handle to a [`Network`].
pub type Net = Shared<Network>;

impl Network {
    /// Creates a network with the given constants.
    pub fn new(cfg: NetworkConfig) -> Net {
        Network::with_telemetry(cfg, Telemetry::disabled())
    }

    /// Creates a network that records link activity through `telemetry`
    /// (per-NIC transfer spans plus `net.messages` / `net.bytes` totals,
    /// all under [`Category::Net`]).
    ///
    /// Panics on an invalid configuration; use [`Network::try_with_telemetry`]
    /// to handle configuration errors as values instead.
    pub fn with_telemetry(cfg: NetworkConfig, telemetry: Telemetry) -> Net {
        match Network::try_with_telemetry(cfg, telemetry) {
            Ok(net) => net,
            // simlint: allow(panic-path, documented loud failure on construction-time config validation; fallible callers use try_with_telemetry)
            Err(e) => panic!("invalid NetworkConfig: {e}"),
        }
    }

    /// Fallible constructor: validates `cfg` and returns the configuration
    /// error instead of panicking.
    pub fn try_with_telemetry(
        cfg: NetworkConfig,
        telemetry: Telemetry,
    ) -> Result<Net, NetConfigError> {
        cfg.validate()?;
        Ok(sim_core::shared(Network {
            cfg,
            nics: BTreeMap::new(),
            stats: NetStats::default(),
            telemetry,
            down: std::collections::BTreeSet::new(),
            degraded: BTreeMap::new(),
            loss: None,
            nic_tracks: BTreeMap::new(),
            drop_marks: BTreeMap::new(),
        }))
    }

    /// The configured constants.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    fn nic(&mut self, n: NodeId) -> &mut NicState {
        self.nics.entry(n).or_default()
    }

    /// Cumulative (transmit, receive) busy time of a node's NIC — the raw
    /// input to link-utilization monitoring and contention analysis.
    pub fn busy_time(&self, n: NodeId) -> (SimDuration, SimDuration) {
        self.nics
            .get(&n)
            .map(|nic| (nic.tx_busy, nic.rx_busy))
            .unwrap_or((SimDuration::ZERO, SimDuration::ZERO))
    }

    /// NIC utilization of a node over the first `elapsed` of the run,
    /// as (tx, rx) fractions in [0, 1].
    pub fn utilization(&self, n: NodeId, elapsed: SimDuration) -> (f64, f64) {
        let (tx, rx) = self.busy_time(n);
        if elapsed.is_zero() {
            return (0.0, 0.0);
        }
        ((tx / elapsed).min(1.0), (rx / elapsed).min(1.0))
    }

    /// Marks a node as crashed. Messages sent from it are dropped at send
    /// time; messages already in flight toward it are dropped at delivery
    /// time (the node-down set is consulted when `net.deliver` fires).
    pub fn set_node_down(&mut self, n: NodeId) {
        self.down.insert(n);
    }

    /// Clears a node's crashed state (e.g. after a restart elsewhere
    /// reuses the id).
    pub fn restore_node(&mut self, n: NodeId) {
        self.down.remove(&n);
    }

    /// True if the node is currently marked down.
    pub fn is_node_down(&self, n: NodeId) -> bool {
        self.down.contains(&n)
    }

    /// Installs (or replaces) a NIC/link degradation on `n`. Expires lazily
    /// at `deg.until`; no events are scheduled.
    pub fn degrade_nic(&mut self, n: NodeId, deg: Degradation) {
        self.degraded.insert(n, deg);
    }

    /// Removes any degradation on `n`.
    pub fn clear_degradation(&mut self, n: NodeId) {
        self.degraded.remove(&n);
    }

    /// Installs a message-loss sampler consulted once per send; returning
    /// `true` drops the message. The closure owns its randomness (a seeded
    /// RNG in `simfault`) so installing one never perturbs the kernel RNG.
    pub fn set_loss_sampler(&mut self, sampler: impl FnMut() -> bool + 'static) {
        self.loss = Some(Box::new(sampler));
    }

    /// Removes the message-loss sampler.
    pub fn clear_loss_sampler(&mut self) {
        self.loss = None;
    }

    fn degradation_at(&self, n: NodeId, now: SimTime) -> Option<Degradation> {
        self.degraded.get(&n).copied().filter(|d| now < d.until)
    }

    /// Wire time between `src` and `dst` at virtual time `now`, with any
    /// active [`Degradation`] on either endpoint folded in: bandwidth is
    /// scaled by the product of the endpoints' bandwidth factors, latency
    /// (and software overhead) by the product of their latency factors.
    pub fn effective_wire_time(
        &self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        now: SimTime,
    ) -> SimDuration {
        let mut bw_factor = 1.0f64;
        let mut lat_factor = 1.0f64;
        for node in [src, dst] {
            if let Some(d) = self.degradation_at(node, now) {
                bw_factor *= d.bandwidth_factor.clamp(f64::MIN_POSITIVE, 1.0);
                lat_factor *= d.latency_factor.max(1.0);
            }
        }
        if bw_factor == 1.0 && lat_factor == 1.0 {
            return self.cfg.wire_time(src, dst, bytes);
        }
        let hops = self.cfg.topology.hops(src, dst) as u64;
        let lat = self.cfg.base_latency + self.cfg.per_hop_latency * hops.saturating_sub(1);
        let bw = ((self.cfg.bandwidth_bps as f64 * bw_factor) as u64).max(1);
        let slowed = SimDuration::from_nanos(
            ((lat + self.cfg.sw_overhead).as_nanos() as f64 * lat_factor) as u64,
        );
        slowed + payload_time(bytes, bw)
    }

    fn note_drop(&mut self, label: &'static str, node: NodeId, at: SimTime) {
        self.stats.dropped += 1;
        if self.telemetry.enabled(Category::Net) {
            self.telemetry.count(Category::Net, "net.dropped", 1);
            let Network { drop_marks, telemetry, .. } = self;
            let mark = drop_marks.entry((label, node)).or_insert_with(|| {
                // simlint: allow(alloc-in-hot-path, first drop of this kind at this node; later drops reuse the cached marker label)
                format!("{label} n{}", node.0)
            });
            telemetry.mark(Category::Net, "net", mark, at);
        }
    }

    /// Schedules delivery of `bytes` from `src` to `dst`, invoking
    /// `on_delivered` at the (virtual) completion time.
    ///
    /// The transfer starts when both the sender's TX path and the receiver's
    /// RX path are idle — this is what makes concurrent transfers through a
    /// shared endpoint queue, the contention effect DataStager's scheduled
    /// pulls exist to mitigate.
    ///
    /// Fault handling: if `src` is down or the loss sampler fires, the
    /// message is dropped at send time (no NIC time accrues, `on_delivered`
    /// never runs, `NetStats::dropped` increments) and `sim.now()` is
    /// returned. If `dst` is down *when delivery would occur*, the message
    /// occupies the wire but is dropped at delivery. Callers that must not
    /// hang on a lost message should use a timeout or a typed-error pull
    /// path (see `datatap`).
    ///
    /// Returns the delivery time.
    pub fn transfer(
        net: &Net,
        sim: &mut Sim,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        on_delivered: impl FnOnce(&mut Sim) + 'static,
    ) -> SimTime {
        let now = sim.now();
        let finish = {
            let mut n = net.borrow_mut();
            if n.is_node_down(src) {
                n.note_drop("drop.src-down", src, now);
                return now;
            }
            if let Some(loss) = n.loss.as_mut() {
                if loss() {
                    n.note_drop("drop.loss", src, now);
                    return now;
                }
            }
            let start = now.max(n.nic(src).tx_free).max(n.nic(dst).rx_free);
            let wire = n.effective_wire_time(src, dst, bytes, now);
            let finish = start + wire;
            {
                let nic = n.nic(src);
                nic.tx_free = finish;
                nic.tx_busy += wire;
            }
            {
                let nic = n.nic(dst);
                nic.rx_free = finish;
                nic.rx_busy += wire;
            }
            n.stats.messages += 1;
            n.stats.bytes += bytes;
            if n.telemetry.enabled(Category::Net) {
                // Split-borrow the fields so the cached track names can be
                // lent to the telemetry recorder without re-borrowing `n`.
                let Network { nic_tracks, telemetry, .. } = &mut *n;
                let (tx_track, _) = &*nic_tracks.entry(src).or_insert_with(|| track_pair(src));
                telemetry.span(Category::Net, tx_track, "xfer", start, finish);
                let (_, rx_track) = &*nic_tracks.entry(dst).or_insert_with(|| track_pair(dst));
                telemetry.span(Category::Net, rx_track, "xfer", start, finish);
                telemetry.count(Category::Net, "net.messages", 1);
                telemetry.count(Category::Net, "net.bytes", bytes);
            }
            finish
        };
        // simlint: allow(alloc-in-hot-path, Shared handle clone is a refcount bump; the delivery closure needs its own handle)
        let net2 = net.clone();
        sim.schedule_at_named("net.deliver", finish, move |sim| {
            // Node-down set consulted on delivery: a message in flight to a
            // node that crashed after send is lost, not delivered.
            if net2.borrow().is_node_down(dst) {
                let at = sim.now();
                net2.borrow_mut().note_drop("drop.dst-down", dst, at);
                return;
            }
            on_delivered(sim);
        });
        finish
    }

    /// Sends a small control message (64 bytes of header/payload).
    pub fn send_control(
        net: &Net,
        sim: &mut Sim,
        src: NodeId,
        dst: NodeId,
        on_delivered: impl FnOnce(&mut Sim) + 'static,
    ) -> SimTime {
        Self::transfer(net, sim, src, dst, 64, on_delivered)
    }

    /// Models an RDMA get: `reader` pulls `bytes` that reside on `holder`.
    /// One control message travels to the holder, then the payload flows
    /// back. `on_complete` fires at the reader once the payload lands.
    pub fn rdma_get(
        net: &Net,
        sim: &mut Sim,
        reader: NodeId,
        holder: NodeId,
        bytes: u64,
        on_complete: impl FnOnce(&mut Sim) + 'static,
    ) {
        let net2 = net.clone();
        Self::send_control(net, sim, reader, holder, move |sim| {
            Network::transfer(&net2, sim, holder, reader, bytes, on_complete);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::shared;

    fn fast_cfg() -> NetworkConfig {
        NetworkConfig {
            base_latency: SimDuration::from_micros(1),
            per_hop_latency: SimDuration::ZERO,
            bandwidth_bps: 1_000_000_000, // 1 GB/s => 1 byte/ns
            sw_overhead: SimDuration::ZERO,
            topology: Topology::Flat,
        }
    }

    #[test]
    fn wire_time_is_latency_plus_payload() {
        let cfg = fast_cfg();
        let t = cfg.wire_time(NodeId(0), NodeId(1), 1_000_000);
        // 1 us latency + 1 ms payload at 1 byte/ns.
        assert_eq!(t, SimDuration::from_micros(1) + SimDuration::from_millis(1));
    }

    #[test]
    fn transfer_delivers_at_wire_time() {
        let mut sim = Sim::new(0);
        let net = Network::new(fast_cfg());
        let done = shared(None);
        let d = done.clone();
        Network::transfer(&net, &mut sim, NodeId(0), NodeId(1), 1_000, move |sim| {
            *d.borrow_mut() = Some(sim.now());
        });
        sim.run();
        assert_eq!(
            *done.borrow(),
            Some(SimTime::ZERO + SimDuration::from_micros(1) + SimDuration::from_micros(1))
        );
    }

    #[test]
    fn concurrent_transfers_to_one_receiver_serialize() {
        let mut sim = Sim::new(0);
        let net = Network::new(fast_cfg());
        let times = shared(Vec::new());
        for src in 1..=3u32 {
            let times = times.clone();
            Network::transfer(&net, &mut sim, NodeId(src), NodeId(0), 1_000_000, move |sim| {
                times.borrow_mut().push(sim.now());
            });
        }
        sim.run();
        let times = times.borrow();
        assert_eq!(times.len(), 3);
        // Each ~1ms payload serializes through node 0's RX path.
        let spacing = times[1] - times[0];
        assert!(spacing >= SimDuration::from_millis(1), "no serialization: {spacing}");
        assert_eq!(net.borrow().stats().messages, 3);
        assert_eq!(net.borrow().stats().bytes, 3_000_000);
    }

    #[test]
    fn disjoint_pairs_do_not_contend() {
        let mut sim = Sim::new(0);
        let net = Network::new(fast_cfg());
        let times = shared(Vec::new());
        for pair in 0..3u32 {
            let times = times.clone();
            Network::transfer(
                &net,
                &mut sim,
                NodeId(pair * 2),
                NodeId(pair * 2 + 1),
                1_000_000,
                move |sim| times.borrow_mut().push(sim.now()),
            );
        }
        sim.run();
        let times = times.borrow();
        assert!(times.iter().all(|&t| t == times[0]), "disjoint pairs should finish together");
    }

    #[test]
    fn rdma_get_round_trips() {
        let mut sim = Sim::new(0);
        let net = Network::new(fast_cfg());
        let done = shared(None);
        let d = done.clone();
        Network::rdma_get(&net, &mut sim, NodeId(0), NodeId(1), 1_000_000, move |sim| {
            *d.borrow_mut() = Some(sim.now());
        });
        sim.run();
        let t = done.borrow().expect("get completed");
        // Control (1us lat + 64ns) + payload leg (1us + 1ms).
        let expected = SimTime::ZERO
            + SimDuration::from_micros(1)
            + SimDuration::from_nanos(64)
            + SimDuration::from_micros(1)
            + SimDuration::from_millis(1);
        assert_eq!(t, expected);
    }

    #[test]
    fn busy_time_accumulates_wire_time() {
        let mut sim = Sim::new(0);
        let net = Network::new(fast_cfg());
        for _ in 0..3 {
            Network::transfer(&net, &mut sim, NodeId(0), NodeId(1), 1_000_000, |_| {});
        }
        sim.run();
        let n = net.borrow();
        let per = SimDuration::from_micros(1) + SimDuration::from_millis(1);
        assert_eq!(n.busy_time(NodeId(0)), (per * 3, SimDuration::ZERO));
        assert_eq!(n.busy_time(NodeId(1)), (SimDuration::ZERO, per * 3));
        // Utilization over the elapsed run is 100% (back-to-back).
        let (tx, _) = n.utilization(NodeId(0), sim.now().since(sim_core::SimTime::ZERO));
        assert!(tx > 0.99, "tx utilization {tx}");
        assert_eq!(n.busy_time(NodeId(99)), (SimDuration::ZERO, SimDuration::ZERO));
    }

    #[test]
    fn telemetry_records_nic_spans_and_totals() {
        use simtel::TelemetryConfig;
        let tel = Telemetry::new(TelemetryConfig::all());
        let mut sim = Sim::new(0);
        let net = Network::with_telemetry(fast_cfg(), tel.clone());
        Network::transfer(&net, &mut sim, NodeId(0), NodeId(1), 1_000, |_| {});
        Network::transfer(&net, &mut sim, NodeId(0), NodeId(2), 1_000, |_| {});
        sim.run();
        assert_eq!(tel.counter("net.messages"), 2);
        assert_eq!(tel.counter("net.bytes"), 2_000);
        let snap = tel.snapshot();
        // Two transfers, each drawn on a tx and an rx track.
        assert_eq!(snap.spans.len(), 4);
        assert!(snap.spans.iter().any(|s| s.track == "nic0.tx"));
        assert!(snap.spans.iter().any(|s| s.track == "nic2.rx"));
        // Spans mirror the NIC busy bookkeeping.
        let tx: SimDuration = snap
            .spans
            .iter()
            .filter(|s| s.track == "nic0.tx")
            .map(|s| s.end.since(s.start))
            .sum();
        assert_eq!(tx, net.borrow().busy_time(NodeId(0)).0);
    }

    #[test]
    fn torus_hops_wrap_around() {
        let topo = Topology::Torus3D { dims: (4, 4, 4) };
        // Node 0 = (0,0,0); node 3 = (3,0,0): wraparound distance 1.
        assert_eq!(topo.hops(NodeId(0), NodeId(3)), 1);
        // Node 0 -> node 2 = (2,0,0): distance 2 either way.
        assert_eq!(topo.hops(NodeId(0), NodeId(2)), 2);
        // Same node.
        assert_eq!(topo.hops(NodeId(5), NodeId(5)), 0);
        // Diagonal: (1,1,1) = id 1 + 4 + 16 = 21.
        assert_eq!(topo.hops(NodeId(0), NodeId(21)), 3);
    }

    #[test]
    fn torus_hops_for_ids_outside_the_volume_wrap() {
        // Pin the documented wrap-modulo-volume semantics for out-of-volume
        // ids: on a (4,4,4) torus (volume 64), id 64 aliases id 0.
        let topo = Topology::Torus3D { dims: (4, 4, 4) };
        assert_eq!(topo.hops(NodeId(64), NodeId(0)), 0);
        // id 65 aliases (1,0,0): one hop from node 0 either as itself or
        // via its in-volume alias.
        assert_eq!(topo.hops(NodeId(65), NodeId(0)), 1);
        assert_eq!(topo.hops(NodeId(65), NodeId(1)), 0);
        // Symmetry holds for aliased ids too.
        assert_eq!(topo.hops(NodeId(0), NodeId(65)), topo.hops(NodeId(65), NodeId(0)));
    }

    #[test]
    fn wire_time_no_longer_saturates_for_huge_payloads() {
        let cfg = fast_cfg();
        // Pre-fix, bytes * 1e9 saturated at u64::MAX for payloads >= ~18.4GB
        // and every larger payload produced the same time. 40 GB must take
        // longer than 20 GB, and both must be proportional to size.
        let t20 = cfg.wire_time(NodeId(0), NodeId(1), 20_000_000_000);
        let t40 = cfg.wire_time(NodeId(0), NodeId(1), 40_000_000_000);
        assert!(t40 > t20, "t40={t40} t20={t20}");
        assert_eq!(t40.as_nanos() - cfg.base_latency.as_nanos(), 40_000_000_000);
        // Sub-nanosecond payloads round *up*, not down to zero.
        let mut fat = fast_cfg();
        fat.bandwidth_bps = 8_000_000_000; // 8 bytes/ns
        let one_byte = fat.wire_time(NodeId(0), NodeId(1), 1);
        assert_eq!(one_byte, fat.base_latency + SimDuration::from_nanos(1));
        // u64::MAX bytes clamps instead of wrapping.
        let huge = cfg.wire_time(NodeId(0), NodeId(1), u64::MAX);
        assert_eq!(huge.as_nanos(), u64::MAX);
    }

    #[test]
    fn validate_rejects_zero_bandwidth_and_zero_torus_dim() {
        let mut cfg = fast_cfg();
        assert_eq!(cfg.validate(), Ok(()));
        cfg.bandwidth_bps = 0;
        assert_eq!(cfg.validate(), Err(NetConfigError::ZeroBandwidth));
        cfg.bandwidth_bps = 1;
        cfg.topology = Topology::Torus3D { dims: (4, 0, 4) };
        assert_eq!(cfg.validate(), Err(NetConfigError::ZeroTorusDim));
    }

    #[test]
    #[should_panic(expected = "invalid NetworkConfig")]
    fn network_construction_rejects_invalid_config() {
        let mut cfg = fast_cfg();
        cfg.bandwidth_bps = 0;
        let _ = Network::new(cfg);
    }

    #[test]
    fn down_source_drops_at_send() {
        let mut sim = Sim::new(0);
        let net = Network::new(fast_cfg());
        net.borrow_mut().set_node_down(NodeId(0));
        let delivered = shared(false);
        let d = delivered.clone();
        Network::transfer(&net, &mut sim, NodeId(0), NodeId(1), 1_000, move |_| {
            *d.borrow_mut() = true;
        });
        sim.run();
        assert!(!*delivered.borrow());
        let n = net.borrow();
        assert_eq!(n.stats().dropped, 1);
        assert_eq!(n.stats().messages, 0);
        // No NIC time accrued for a message dropped at send.
        assert_eq!(n.busy_time(NodeId(0)), (SimDuration::ZERO, SimDuration::ZERO));
    }

    #[test]
    fn crash_mid_flight_drops_at_delivery() {
        let mut sim = Sim::new(0);
        let net = Network::new(fast_cfg());
        let delivered = shared(false);
        let d = delivered.clone();
        Network::transfer(&net, &mut sim, NodeId(0), NodeId(1), 1_000_000, move |_| {
            *d.borrow_mut() = true;
        });
        // Crash the destination while the message is on the wire.
        let net2 = net.clone();
        sim.schedule_in_named("net.crash", SimDuration::from_micros(10), move |_| {
            net2.borrow_mut().set_node_down(NodeId(1));
        });
        sim.run();
        assert!(!*delivered.borrow(), "message to a crashed node must not deliver");
        assert_eq!(net.borrow().stats().dropped, 1);
        // The wire was occupied: the message transmitted before being lost.
        assert_eq!(net.borrow().stats().messages, 1);
    }

    #[test]
    fn restored_node_delivers_again() {
        let mut sim = Sim::new(0);
        let net = Network::new(fast_cfg());
        net.borrow_mut().set_node_down(NodeId(1));
        net.borrow_mut().restore_node(NodeId(1));
        let delivered = shared(false);
        let d = delivered.clone();
        Network::transfer(&net, &mut sim, NodeId(0), NodeId(1), 64, move |_| {
            *d.borrow_mut() = true;
        });
        sim.run();
        assert!(*delivered.borrow());
        assert_eq!(net.borrow().stats().dropped, 0);
    }

    #[test]
    fn degradation_slows_transfers_until_expiry() {
        let net = Network::new(fast_cfg());
        let mut n = net.borrow_mut();
        let base = n.effective_wire_time(NodeId(0), NodeId(1), 1_000_000, SimTime::ZERO);
        n.degrade_nic(
            NodeId(1),
            Degradation {
                bandwidth_factor: 0.5,
                latency_factor: 2.0,
                until: SimTime::ZERO + SimDuration::from_secs(10),
            },
        );
        let slowed = n.effective_wire_time(NodeId(0), NodeId(1), 1_000_000, SimTime::ZERO);
        // Half bandwidth => payload doubles; latency doubles too.
        assert_eq!(slowed, base * 2);
        // After expiry the entry is ignored.
        let after =
            n.effective_wire_time(NodeId(0), NodeId(1), 1_000_000, SimTime::ZERO + SimDuration::from_secs(10));
        assert_eq!(after, base);
        n.clear_degradation(NodeId(1));
        assert_eq!(n.effective_wire_time(NodeId(0), NodeId(1), 1_000_000, SimTime::ZERO), base);
    }

    #[test]
    fn loss_sampler_drops_sampled_messages() {
        let mut sim = Sim::new(0);
        let net = Network::new(fast_cfg());
        // Deterministic sampler: drop every second message.
        let mut flip = false;
        net.borrow_mut().set_loss_sampler(move || {
            flip = !flip;
            flip
        });
        let count = shared(0u32);
        for _ in 0..4 {
            let c = count.clone();
            Network::transfer(&net, &mut sim, NodeId(0), NodeId(1), 64, move |_| {
                *c.borrow_mut() += 1;
            });
        }
        sim.run();
        assert_eq!(*count.borrow(), 2);
        assert_eq!(net.borrow().stats().dropped, 2);
        net.borrow_mut().clear_loss_sampler();
    }

    #[test]
    fn torus_latency_exceeds_flat_for_distant_nodes() {
        let mut torus = fast_cfg();
        torus.topology = Topology::Torus3D { dims: (8, 8, 8) };
        torus.per_hop_latency = SimDuration::from_nanos(100);
        let near = torus.wire_time(NodeId(0), NodeId(1), 64);
        // (4,4,4) => id 4 + 4*8 + 4*64 = 292 — maximal distance corner.
        let far = torus.wire_time(NodeId(0), NodeId(292), 64);
        assert!(far > near);
    }
}
