//! Batch-launch (`aprun`) cost model.
//!
//! On Cray machines every new executable instance must be started through
//! `aprun`, whose cost the paper measured at 3–27 seconds with high variance
//! and deliberately *factored out* of the Fig. 4/5 protocol microbenchmarks
//! (it is an artifact of batch-style OS scheduling, not of container
//! management). We model it the same way: a separately-accountable, highly
//! variable launch delay that harnesses can include or exclude.

use rand::Rng;
use sim_core::{Sim, SimDuration};

/// Launch-cost model for starting new component replicas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaunchModel {
    /// Free instantaneous launch — the EVPath/Charm++-style runtimes the
    /// paper points to as not suffering aprun's limitations.
    Instant,
    /// Fixed launch cost (deterministic baselines and tests).
    Fixed(SimDuration),
    /// Cray `aprun`: uniformly distributed in the paper's observed 3–27 s
    /// range. One draw covers the whole launch regardless of replica count,
    /// matching aprun's one-command-per-launch behaviour.
    Aprun,
}

impl LaunchModel {
    /// The paper's observed lower bound for `aprun`.
    pub const APRUN_MIN: SimDuration = SimDuration::from_secs(3);
    /// The paper's observed upper bound for `aprun`.
    pub const APRUN_MAX: SimDuration = SimDuration::from_secs(27);

    /// Samples the launch delay for one launch operation.
    pub fn sample(&self, sim: &mut Sim) -> SimDuration {
        match *self {
            LaunchModel::Instant => SimDuration::ZERO,
            LaunchModel::Fixed(d) => d,
            LaunchModel::Aprun => {
                let lo = Self::APRUN_MIN.as_nanos();
                let hi = Self::APRUN_MAX.as_nanos();
                SimDuration::from_nanos(sim.rng().gen_range(lo..=hi))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_is_free() {
        let mut sim = Sim::new(0);
        assert_eq!(LaunchModel::Instant.sample(&mut sim), SimDuration::ZERO);
    }

    #[test]
    fn fixed_is_exact() {
        let mut sim = Sim::new(0);
        let d = SimDuration::from_secs(5);
        assert_eq!(LaunchModel::Fixed(d).sample(&mut sim), d);
    }

    #[test]
    fn aprun_stays_in_observed_range() {
        let mut sim = Sim::new(123);
        for _ in 0..1000 {
            let d = LaunchModel::Aprun.sample(&mut sim);
            assert!(d >= LaunchModel::APRUN_MIN && d <= LaunchModel::APRUN_MAX, "{d}");
        }
    }

    #[test]
    fn aprun_is_deterministic_per_seed() {
        let mut a = Sim::new(7);
        let mut b = Sim::new(7);
        for _ in 0..10 {
            assert_eq!(LaunchModel::Aprun.sample(&mut a), LaunchModel::Aprun.sample(&mut b));
        }
    }

    #[test]
    fn aprun_varies_drastically() {
        // The paper calls the cost "well known and varies drastically";
        // check we actually span most of the range.
        let mut sim = Sim::new(99);
        let samples: Vec<_> = (0..200).map(|_| LaunchModel::Aprun.sample(&mut sim)).collect();
        let min = samples.iter().min().unwrap();
        let max = samples.iter().max().unwrap();
        assert!(*min < SimDuration::from_secs(6));
        assert!(*max > SimDuration::from_secs(24));
    }
}
