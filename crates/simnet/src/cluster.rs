//! Cluster model: nodes, batch allocations, and the staging-area partition.
//!
//! On the machines the paper targets, a batch scheduler grants the user a
//! fixed set of nodes for the whole job; the user splits them between the
//! simulation and a much smaller staging area (ratios of 1:512 to 1:2048 are
//! cited). [`Cluster`] models the machine inventory, [`Allocation`] a batch
//! grant, and [`StagingArea`] the node pool that container management carves
//! up at runtime.

use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a physical node in the machine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Static description of one node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeSpec {
    /// Cores per node.
    pub cores: u32,
    /// Memory per node, in bytes.
    pub mem_bytes: u64,
}

/// Static description of the machine.
#[derive(Clone, Debug)]
pub struct Cluster {
    name: String,
    node_count: u32,
    spec: NodeSpec,
}

impl Cluster {
    /// Builds a machine with `node_count` identical nodes.
    pub fn new(name: impl Into<String>, node_count: u32, spec: NodeSpec) -> Self {
        Cluster { name: name.into(), node_count, spec }
    }

    /// NERSC Franklin, the paper's container testbed: 9,572-node Cray XT4,
    /// quad-core 2.3 GHz AMD Budapest, ~8 GB/node, Portals network.
    pub fn franklin() -> Self {
        Cluster::new(
            "franklin",
            9_572,
            NodeSpec { cores: 4, mem_bytes: 8 * 1024 * 1024 * 1024 },
        )
    }

    /// Sandia RedSky, the paper's transaction testbed: 2,823 nodes, 8-core
    /// Xeon 5570, 12 GB/node, QDR InfiniBand 3-D torus.
    pub fn redsky() -> Self {
        Cluster::new(
            "redsky",
            2_823,
            NodeSpec { cores: 8, mem_bytes: 12 * 1024 * 1024 * 1024 },
        )
    }

    /// The machine's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> u32 {
        self.node_count
    }

    /// Per-node hardware description.
    pub fn spec(&self) -> NodeSpec {
        self.spec
    }

    /// Total core count.
    pub fn total_cores(&self) -> u64 {
        self.node_count as u64 * self.spec.cores as u64
    }

    /// Simulates a batch-scheduler grant of `nodes` nodes.
    ///
    /// Returns `None` if the request exceeds the machine size. Node ids are
    /// assigned contiguously from zero, mirroring the packed placement batch
    /// schedulers prefer.
    pub fn allocate(&self, nodes: u32) -> Option<Allocation> {
        if nodes > self.node_count {
            return None;
        }
        Some(Allocation { nodes: (0..nodes).map(NodeId).collect() })
    }
}

/// A batch-scheduler grant: the fixed node set available for the whole run.
#[derive(Clone, Debug)]
pub struct Allocation {
    nodes: BTreeSet<NodeId>,
}

impl Allocation {
    /// Number of nodes in the grant.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the grant is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates the granted nodes in id order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// Splits the grant into a simulation partition of `sim_nodes` nodes and
    /// a staging area holding the remainder.
    ///
    /// # Panics
    /// Panics if `sim_nodes` exceeds the grant size.
    pub fn split(self, sim_nodes: u32) -> (Vec<NodeId>, StagingArea) {
        assert!(
            (sim_nodes as usize) <= self.nodes.len(),
            "cannot split {} nodes off a {}-node allocation",
            sim_nodes,
            self.nodes.len()
        );
        let mut iter = self.nodes.into_iter();
        let sim: Vec<NodeId> = iter.by_ref().take(sim_nodes as usize).collect();
        let staging = StagingArea::new(iter.collect());
        (sim, staging)
    }
}

/// Errors from staging-area node requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StagingError {
    /// The free pool holds fewer nodes than requested.
    Insufficient {
        /// Nodes requested.
        requested: u32,
        /// Nodes actually free.
        available: u32,
    },
    /// A node being returned was not part of the staging area, or was
    /// already free.
    ForeignNode(NodeId),
}

impl fmt::Display for StagingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StagingError::Insufficient { requested, available } => {
                write!(f, "requested {requested} staging nodes but only {available} free")
            }
            StagingError::ForeignNode(n) => write!(f, "node {n} does not belong to this staging area"),
        }
    }
}

impl std::error::Error for StagingError {}

/// The staging-area node pool that container management draws from.
///
/// Tracks which nodes are free ("spare") and which are leased to containers.
/// All mutation is checked: a node can only be leased once, and only nodes
/// belonging to the area can be returned.
#[derive(Clone, Debug)]
pub struct StagingArea {
    all: BTreeSet<NodeId>,
    free: BTreeSet<NodeId>,
}

impl StagingArea {
    /// Builds a staging area over an explicit node set, all initially free.
    pub fn new(nodes: BTreeSet<NodeId>) -> Self {
        StagingArea { free: nodes.clone(), all: nodes }
    }

    /// Builds a staging area of `count` fresh nodes with ids starting at
    /// `first_id` (convenience for tests and microbenchmarks).
    pub fn with_nodes(first_id: u32, count: u32) -> Self {
        StagingArea::new((first_id..first_id + count).map(NodeId).collect())
    }

    /// Total nodes in the area (leased + free).
    pub fn total(&self) -> u32 {
        self.all.len() as u32
    }

    /// Nodes currently unleased.
    pub fn spare(&self) -> u32 {
        self.free.len() as u32
    }

    /// Leases `count` nodes, removing them from the free pool.
    pub fn lease(&mut self, count: u32) -> Result<Vec<NodeId>, StagingError> {
        if (count as usize) > self.free.len() {
            return Err(StagingError::Insufficient {
                requested: count,
                available: self.free.len() as u32,
            });
        }
        let picked: Vec<NodeId> = self.free.iter().copied().take(count as usize).collect();
        for n in &picked {
            self.free.remove(n);
        }
        Ok(picked)
    }

    /// Returns leased nodes to the free pool.
    pub fn release(&mut self, nodes: &[NodeId]) -> Result<(), StagingError> {
        for &n in nodes {
            if !self.all.contains(&n) || self.free.contains(&n) {
                return Err(StagingError::ForeignNode(n));
            }
        }
        self.free.extend(nodes.iter().copied());
        Ok(())
    }

    /// True if `node` belongs to this staging area.
    pub fn contains(&self, node: NodeId) -> bool {
        self.all.contains(&node)
    }

    /// Permanently retires a crashed node: it is removed from the area
    /// entirely (free pool and membership), so it can neither be leased
    /// again nor released back. Works whether the node was spare or leased
    /// at the time of the crash. Returns `true` if the node belonged to the
    /// area.
    pub fn fail_node(&mut self, node: NodeId) -> bool {
        self.free.remove(&node);
        self.all.remove(&node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn franklin_matches_paper_numbers() {
        let c = Cluster::franklin();
        assert_eq!(c.node_count(), 9_572);
        assert_eq!(c.total_cores(), 38_288);
        assert_eq!(c.spec().cores, 4);
    }

    #[test]
    fn allocation_split_partitions_exactly() {
        let c = Cluster::franklin();
        let alloc = c.allocate(269).expect("franklin has enough nodes");
        let (sim, staging) = alloc.split(256);
        assert_eq!(sim.len(), 256);
        assert_eq!(staging.total(), 13);
        assert_eq!(staging.spare(), 13);
        // Partitions are disjoint.
        for n in sim {
            assert!(!staging.contains(n));
        }
    }

    #[test]
    fn oversized_allocation_rejected() {
        let c = Cluster::new("tiny", 4, NodeSpec { cores: 1, mem_bytes: 1 << 30 });
        assert!(c.allocate(5).is_none());
        assert!(c.allocate(4).is_some());
    }

    #[test]
    fn lease_release_round_trip() {
        let mut s = StagingArea::with_nodes(100, 8);
        let leased = s.lease(5).unwrap();
        assert_eq!(leased.len(), 5);
        assert_eq!(s.spare(), 3);
        s.release(&leased).unwrap();
        assert_eq!(s.spare(), 8);
    }

    #[test]
    fn lease_beyond_pool_fails_without_mutation() {
        let mut s = StagingArea::with_nodes(0, 4);
        let err = s.lease(5).unwrap_err();
        assert_eq!(err, StagingError::Insufficient { requested: 5, available: 4 });
        assert_eq!(s.spare(), 4);
    }

    #[test]
    fn double_release_rejected() {
        let mut s = StagingArea::with_nodes(0, 4);
        let leased = s.lease(2).unwrap();
        s.release(&leased).unwrap();
        let err = s.release(&leased).unwrap_err();
        assert!(matches!(err, StagingError::ForeignNode(_)));
    }

    #[test]
    fn failed_node_never_returns_to_the_pool() {
        let mut s = StagingArea::with_nodes(0, 4);
        // Fail a spare node: pool shrinks for good.
        assert!(s.fail_node(NodeId(0)));
        assert_eq!(s.total(), 3);
        assert_eq!(s.spare(), 3);
        // Fail a leased node: releasing it afterwards is a foreign-node
        // error, and it never reappears as spare.
        let leased = s.lease(2).unwrap();
        assert!(s.fail_node(leased[0]));
        assert_eq!(s.release(&leased[..1]).unwrap_err(), StagingError::ForeignNode(leased[0]));
        s.release(&leased[1..]).unwrap();
        assert_eq!(s.total(), 2);
        assert_eq!(s.spare(), 2);
        // Unknown nodes report false.
        assert!(!s.fail_node(NodeId(99)));
    }

    #[test]
    fn foreign_release_rejected() {
        let mut s = StagingArea::with_nodes(0, 4);
        let err = s.release(&[NodeId(99)]).unwrap_err();
        assert_eq!(err, StagingError::ForeignNode(NodeId(99)));
    }
}
