//! # simnet — simulated HPC cluster and interconnect
//!
//! The paper's testbeds (NERSC Franklin, a Cray XT4 with a Portals network,
//! and Sandia RedSky, a QDR InfiniBand torus) are modeled here as
//! deterministic substrates on the [`sim_core`] kernel:
//!
//! * [`cluster`] — machine inventory, batch allocations, and the
//!   staging-area node pool that container management leases from;
//! * [`net`] — the interconnect: per-message latency (flat or 3-D torus
//!   hops), per-NIC serialization, bandwidth-limited bulk transfers, and
//!   RDMA-get pull semantics;
//! * [`launch`] — the `aprun` batch-launch cost model (3–27 s, factored out
//!   of the protocol microbenchmarks exactly as the paper does).
//!
//! ## Example
//! ```
//! use sim_core::Sim;
//! use simnet::{Cluster, Network, NetworkConfig, NodeId};
//!
//! let mut sim = Sim::new(1);
//! let net = Network::new(NetworkConfig::portals_xt4());
//! let alloc = Cluster::franklin().allocate(269).unwrap();
//! let (sim_nodes, staging) = alloc.split(256);
//! assert_eq!(staging.spare(), 13);
//!
//! // Pull 67 MB (the paper's 256-node output step) from a compute node
//! // into a staging node.
//! Network::rdma_get(&net, &mut sim, NodeId(260), sim_nodes[0], 67_000_000, |_| {});
//! sim.run();
//! assert!(sim.now().as_secs_f64() > 0.03); // ~42 ms at 1.6 GB/s
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod launch;
pub mod net;

pub use cluster::{Allocation, Cluster, NodeId, NodeSpec, StagingArea, StagingError};
pub use launch::LaunchModel;
pub use net::{Degradation, Net, NetConfigError, NetStats, Network, NetworkConfig, Topology};
