//! Integration tests of the N↔M streaming contract under real threads:
//! a writer group redistributing fragments to several independent
//! cursors, late joiners, a restarted reader rejoining mid-stream, the
//! scheduled-pull policy layer over a stream cursor, and the control
//! announcements on the event overlay.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use adios::{AttrValue, StepData};
use datatap::{Clock, ManualClock, PullPolicy, ScheduledReader};
use evpath::{Action, Overlay};
use sim_core::SimTime;
use stream::{Attach, StreamConfig, StreamControl, StreamEngine};

fn frag(step: u64, rank: u32) -> StepData {
    let mut s = StepData::new(step);
    s.set_attr("rank", AttrValue::Int(rank as i64));
    s.set_attr("origin", AttrValue::Str(format!("writer-{rank}")));
    s
}

/// Three writer ranks, two independent cursors: both consumers observe
/// the identical global-step sequence, every step carrying all three
/// fragments, whatever the rank interleaving.
#[test]
fn three_writers_two_readers_see_identical_sequences() {
    let eng = StreamEngine::new(StreamConfig { writers: 3, retention: 8 });
    let steps = 20u64;

    let viz = eng.reader("viz", Attach::Oldest, None).unwrap();
    let analytics = eng.reader("analytics", Attach::Oldest, None).unwrap();

    let consume = |r: stream::StreamReader| {
        thread::spawn(move || {
            let mut seq = Vec::new();
            while let Some(step) = r.next_step() {
                assert_eq!(step.fragments.len(), 3, "a sealed step carries all fragments");
                for (rank, f) in step.fragments.iter().enumerate() {
                    assert_eq!(f.step(), step.index, "fragments agree on the step");
                    assert_eq!(f.attr("rank"), Some(&AttrValue::Int(rank as i64)));
                }
                seq.push(step.index);
            }
            seq
        })
    };
    let viz_thread = consume(viz);
    let analytics_thread = consume(analytics);

    let mut writers = Vec::new();
    for rank in 0..3u32 {
        let w = eng.writer(rank);
        writers.push(thread::spawn(move || {
            for step in 0..steps {
                // MD-style non-contiguous step indices, written under the
                // blocking path so retention backpressure applies.
                w.write(frag(step * 5, rank)).unwrap();
            }
        }));
    }
    eng.clone().writer(0); // dropped immediately: must NOT close (others live)
    for w in writers {
        w.join().unwrap();
    }
    // All rank handles are gone now: the engine closed and readers drain.
    let expected: Vec<u64> = (0..steps).map(|s| s * 5).collect();
    assert_eq!(viz_thread.join().unwrap(), expected);
    assert_eq!(analytics_thread.join().unwrap(), expected);
    assert_eq!(eng.sealed_steps(), steps);
}

/// A reader attaching mid-run with [`Attach::Current`] sees only steps
/// sealed after the attach — and per-step attributes flow through to it.
#[test]
fn late_joiner_starts_at_the_current_step() {
    let eng = StreamEngine::new(StreamConfig { writers: 2, retention: 16 });
    let w0 = eng.writer(0);
    let w1 = eng.writer(1);
    let archival = eng.reader("archival", Attach::Oldest, None).unwrap();

    for step in 0..4 {
        w0.try_write(frag(step, 0)).unwrap();
        w1.try_write(frag(step, 1)).unwrap();
    }
    assert_eq!(eng.sealed_steps(), 4);

    let late = eng.reader("late-viz", Attach::Current, None).unwrap();
    for step in 4..8 {
        w0.try_write(frag(step, 0)).unwrap();
        w1.try_write(frag(step, 1)).unwrap();
    }
    drop(w0);
    drop(w1);

    let late_steps: Vec<u64> = std::iter::from_fn(|| late.next_step()).map(|s| s.index).collect();
    assert_eq!(late_steps, vec![4, 5, 6, 7], "history stays invisible to the late joiner");

    let all: Vec<u64> = std::iter::from_fn(|| archival.next_step()).map(|s| s.index).collect();
    assert_eq!(all, (0..8).collect::<Vec<_>>(), "the original cursor still sees everything");
}

/// A reader that dies mid-stream and rejoins with [`Attach::Resume`]
/// observes every step exactly once, even though the writers kept going —
/// the registered cursor backpressures the writers instead of losing
/// retained steps.
#[test]
fn restarted_reader_rejoins_without_duplication_or_loss() {
    // Tight retention proves the hold: with the cursor parked at step 3
    // the writer can run at most `retention` steps ahead, then blocks.
    let eng = StreamEngine::new(StreamConfig { writers: 1, retention: 4 });
    let w = eng.writer(0);
    let steps = 12u64;

    let writer = {
        let w = w.clone();
        thread::spawn(move || {
            for step in 0..steps {
                w.write(frag(step, 0)).unwrap();
            }
        })
    };
    drop(w);

    let mut seen = Vec::new();
    let r = eng.reader("analytics", Attach::Oldest, None).unwrap();
    for _ in 0..3 {
        seen.push(r.next_step().unwrap().index);
    }
    drop(r); // the analytics reader crashes mid-stream

    // Writers continue into the retention window while the cursor is
    // parked; the restarted reader resumes exactly where it left off.
    let r = eng.reader("analytics", Attach::Resume, None).unwrap();
    while let Some(step) = r.next_step() {
        seen.push(step.index);
    }
    writer.join().unwrap();
    assert_eq!(seen, (0..steps).collect::<Vec<_>>(), "no duplicate, no loss across the restart");
}

/// The scheduled-pull policy layer accepts a stream cursor wherever it
/// accepts a staged-channel reader: concurrency limits and the clock both
/// come through the [`datatap::PullSource`] seam.
#[test]
fn scheduled_reader_pulls_a_stream_cursor_under_policy() {
    let clock = Arc::new(ManualClock::new());
    let eng = StreamEngine::builder(StreamConfig { writers: 1, retention: 16 })
        .clock(clock.clone())
        .build();
    let w = eng.writer(0);
    for step in 0..4 {
        w.try_write(frag(step, 0)).unwrap();
    }

    let cursor = eng.reader("viz", Attach::Oldest, None).unwrap();
    let sched = ScheduledReader::new(cursor, PullPolicy::Scheduled { max_concurrent: 1 });

    let (guard, meta, _) = sched.pull().expect("data is sealed");
    assert_eq!(meta.step, 0);
    assert_eq!(sched.in_flight(), 1);
    // The single slot is taken: a timed pull must give up at its deadline
    // on the injected clock, charging the wait virtually.
    assert!(sched.pull_timeout(Duration::from_secs(2)).is_none());
    assert_eq!(clock.now(), SimTime::from_secs(2));
    drop(guard);
    let (_, meta, _) = sched.pull().expect("slot free again");
    assert_eq!(meta.step, 1);
}

/// Control-plane announcements reach the overlay: seals, attaches,
/// detaches, pause/resume, and close, countable by a monitoring stone.
#[test]
fn control_announcements_flow_to_the_overlay() {
    let overlay = Overlay::new("stream-control");
    let counts: Arc<[AtomicU64; 6]> = Arc::new(std::array::from_fn(|_| AtomicU64::new(0)));
    let c = counts.clone();
    let stone = overlay.add_stone(Action::Terminal(Box::new(move |ev| {
        let ix = match ev.expect::<StreamControl>() {
            StreamControl::Sealed { .. } => 0,
            StreamControl::Attached { .. } => 1,
            StreamControl::Detached { .. } => 2,
            StreamControl::Paused => 3,
            StreamControl::Resumed => 4,
            _ => 5,
        };
        c[ix].fetch_add(1, Ordering::Relaxed);
    })));

    let eng = StreamEngine::builder(StreamConfig { writers: 1, retention: 8 })
        .control(overlay.sender(), stone)
        .build();
    let w = eng.writer(0);
    let r = eng.reader("viz", Attach::Oldest, None).unwrap();
    w.try_write(frag(0, 0)).unwrap();
    w.try_write(frag(1, 0)).unwrap();
    let w2 = w.clone();
    let pauser = std::thread::spawn(move || w2.pause());
    // Drain the two sealed steps through the cursor while the pause
    // holds the gate.
    assert_eq!(r.next_step().unwrap().index, 0);
    assert_eq!(r.next_step().unwrap().index, 1);
    let drained = pauser.join().unwrap().expect("drain completes");
    assert!(drained <= 2, "pause reports the backlog at engage time");
    w.resume();
    drop(r);
    eng.close();
    overlay.flush();
    overlay.shutdown();

    assert_eq!(counts[0].load(Ordering::Relaxed), 2, "two seal announcements");
    assert_eq!(counts[1].load(Ordering::Relaxed), 1, "one attach");
    assert_eq!(counts[2].load(Ordering::Relaxed), 1, "one detach");
    assert_eq!(counts[3].load(Ordering::Relaxed), 1, "one pause");
    assert_eq!(counts[4].load(Ordering::Relaxed), 1, "one resume");
    assert!(counts[5].load(Ordering::Relaxed) >= 1, "the close announces");
}

/// Per-step attributes merge across the writer group and reach every
/// reader — the provenance surface for steps that later go to disk.
#[test]
fn merged_attributes_reach_all_readers() {
    let eng = StreamEngine::new(StreamConfig { writers: 2, retention: 4 });
    let w0 = eng.writer(0);
    let w1 = eng.writer(1);
    let readers: Vec<_> = ["viz", "analytics", "archival"]
        .iter()
        .map(|name| eng.reader(*name, Attach::Oldest, None).unwrap())
        .collect();

    let mut a = StepData::new(0);
    a.set_attr("temperature", AttrValue::Float(0.7));
    let mut b = StepData::new(0);
    b.set_attr("strain", AttrValue::Float(0.01));
    w0.try_write(a).unwrap();
    w1.try_write(b).unwrap();

    for r in &readers {
        let step = r.try_next_step().unwrap();
        let attrs: BTreeMap<&str, &AttrValue> =
            step.attrs.iter().map(|(k, v)| (k.as_str(), v)).collect();
        assert_eq!(attrs.get("temperature"), Some(&&AttrValue::Float(0.7)));
        assert_eq!(attrs.get("strain"), Some(&&AttrValue::Float(0.01)));
    }
}

/// Timeout pulls on a manual clock advance virtual time instead of
/// sleeping: an hour of waiting costs nothing real.
#[test]
fn virtual_timeouts_never_sleep() {
    let clock = Arc::new(ManualClock::new());
    let eng = StreamEngine::builder(StreamConfig { writers: 1, retention: 4 })
        .clock(clock.clone())
        .build();
    let _w = eng.writer(0);
    let r = eng.reader("viz", Attach::Oldest, None).unwrap();
    // This real-time measurement is the test's whole point: proving the
    // hour-long virtual wait costs nothing on the wall.
    // simlint: allow(wall-clock, measuring that a virtual wait takes no real time)
    let t0 = std::time::Instant::now();
    assert!(r.next_step_timeout(Duration::from_secs(3600)).is_none());
    assert_eq!(clock.now(), SimTime::from_secs(3600));
    assert!(t0.elapsed() < Duration::from_secs(5), "the hour was virtual");
}
