//! Step-streaming engine: N↔M redistribution of per-writer step
//! fragments over a sealed step log.
//!
//! The staged channel ([`datatap`]) moves single-producer-group steps to
//! one consumer pool. This crate generalises that transport into the
//! paper's streaming model: a writer group of `N` ranks emits per-rank
//! *fragments* of each application step, the engine seals complete steps
//! into a bounded log, and `M` independent named reader cursors consume
//! the log concurrently — a visualization pipeline, an analytics
//! pipeline, and an archival writer can all ride one stream at their own
//! pace. Late joiners attach at the current step; a restarted reader
//! resumes its durable cursor with no step duplicated or lost; per-step
//! attributes carry provenance from writers to every reader.
//!
//! The same consumption API covers post-hoc file replay:
//! [`StepSource`] abstracts over a live [`StreamReader`] and a BP file
//! written by [`adios::BpFileWriter`], so an analysis kernel runs
//! unchanged in-situ and offline.
//!
//! Pause/resume on the writer group follows the transport's corrected
//! protocol: [`StepWriter::pause`] drains through every attached cursor
//! and reports aborts as typed [`PauseAborted`] errors, and timeout pulls
//! charge their whole wait against one deadline on the engine's
//! injectable [`Clock`].

#![warn(missing_docs)]

mod engine;
mod source;

pub use engine::{
    Attach, AttachError, GlobalStep, StepWriter, StreamBuilder, StreamConfig, StreamControl,
    StreamEngine, StreamReader, StreamWriteError,
};
pub use source::{FileSource, LiveSource, SourceError, StepSource};

pub use datatap::{Clock, ManualClock, PauseAborted, PullSource, StepMeta, WallClock};
