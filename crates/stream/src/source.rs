//! One consumption API over live streams and post-hoc files.
//!
//! In-situ pipelines read a [`StreamReader`]; offline reruns read the BP
//! file an archival reader wrote. [`StepSource`] lets the analysis kernel
//! be written once against `next_step()` and run against either.

use adios::bpfile::BpFileError;
use adios::{BpFileReader, StepData};

use crate::engine::StreamReader;

/// Why a source could not produce its next step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SourceError {
    /// The backing BP file is unreadable or corrupt.
    File(String),
    /// The live stream failed (writer-side crash).
    Failed(&'static str),
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceError::File(e) => write!(f, "file source: {e}"),
            SourceError::Failed(reason) => write!(f, "stream failed: {reason}"),
        }
    }
}

impl std::error::Error for SourceError {}

/// A sequential source of step fragments: the file-vs-stream seam.
///
/// `Ok(None)` is clean end-of-stream (file exhausted, or live stream
/// closed and drained); errors distinguish a truncated file from a failed
/// transport so recovery logic can branch.
pub trait StepSource {
    /// Produces the next fragment, blocking if the source is live and the
    /// step has not sealed yet.
    fn next_step(&mut self) -> Result<Option<StepData>, SourceError>;
}

/// A [`StepSource`] over a live stream cursor, yielding fragments in the
/// cursor's step-major, rank-minor order.
pub struct LiveSource {
    reader: StreamReader,
}

impl LiveSource {
    /// Wraps a stream cursor.
    pub fn new(reader: StreamReader) -> LiveSource {
        LiveSource { reader }
    }

    /// The wrapped cursor.
    pub fn reader(&self) -> &StreamReader {
        &self.reader
    }
}

impl StepSource for LiveSource {
    fn next_step(&mut self) -> Result<Option<StepData>, SourceError> {
        match self.reader.pull() {
            Some((_, data)) => Ok(Some(data)),
            None => match self.reader.failure() {
                Some(reason) => Err(SourceError::Failed(reason)),
                None => Ok(None),
            },
        }
    }
}

/// A [`StepSource`] replaying a BP file sequentially, step by step, in
/// the order the archival reader appended them.
pub struct FileSource {
    reader: BpFileReader,
    pos: usize,
}

impl FileSource {
    /// Opens a BP file for sequential replay.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<FileSource, SourceError> {
        let reader = BpFileReader::open(path).map_err(file_err)?;
        Ok(FileSource { reader, pos: 0 })
    }

    /// Steps in the file.
    pub fn len(&self) -> usize {
        self.reader.len()
    }

    /// True when the file holds no steps.
    pub fn is_empty(&self) -> bool {
        self.reader.is_empty()
    }
}

impl StepSource for FileSource {
    fn next_step(&mut self) -> Result<Option<StepData>, SourceError> {
        if self.pos >= self.reader.len() {
            return Ok(None);
        }
        let step = self.reader.read_at(self.pos).map_err(file_err)?;
        self.pos += 1;
        Ok(Some(step.data))
    }
}

fn file_err(e: BpFileError) -> SourceError {
    SourceError::File(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Attach, StreamConfig, StreamEngine};
    use adios::{AttrValue, BpFileWriter};
    use datatap::ManualClock;
    use std::sync::Arc;

    fn frag(step: u64) -> StepData {
        let mut s = StepData::new(step);
        s.set_attr("kind", AttrValue::Str("source-test".into()));
        s
    }

    #[test]
    fn live_source_ends_cleanly_on_close() {
        let eng = StreamEngine::builder(StreamConfig { writers: 1, retention: 8 })
            .clock(Arc::new(ManualClock::new()))
            .build();
        let w = eng.writer(0);
        let r = eng.reader("kernel", Attach::Oldest, None).unwrap();
        w.try_write(frag(0)).unwrap();
        w.try_write(frag(1)).unwrap();
        drop(w);
        let mut src = LiveSource::new(r);
        assert_eq!(src.next_step().unwrap().unwrap().step(), 0);
        assert_eq!(src.next_step().unwrap().unwrap().step(), 1);
        assert!(src.next_step().unwrap().is_none(), "closed and drained is a clean end");
    }

    #[test]
    fn live_source_surfaces_a_stream_failure() {
        let eng = StreamEngine::builder(StreamConfig { writers: 1, retention: 8 })
            .clock(Arc::new(ManualClock::new()))
            .build();
        let w = eng.writer(0);
        let r = eng.reader("kernel", Attach::Oldest, None).unwrap();
        w.try_write(frag(0)).unwrap();
        w.fail("injected crash");
        let mut src = LiveSource::new(r);
        assert!(matches!(src.next_step(), Err(SourceError::Failed("injected crash"))));
    }

    #[test]
    fn file_replay_matches_the_live_sequence() {
        let dir = std::env::temp_dir().join(format!("stream-src-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("replay.bp");

        // Live pass: stream three steps and archive them.
        let eng = StreamEngine::builder(StreamConfig { writers: 1, retention: 8 })
            .clock(Arc::new(ManualClock::new()))
            .build();
        let w = eng.writer(0);
        let r = eng.reader("archival", Attach::Oldest, None).unwrap();
        for step in 0..3 {
            w.try_write(frag(step)).unwrap();
        }
        drop(w);
        let mut live = LiveSource::new(r);
        let mut bp = BpFileWriter::create(&path).unwrap();
        let mut live_steps = Vec::new();
        while let Some(data) = live.next_step().unwrap() {
            live_steps.push(data.step());
            bp.append("bonds", &data).unwrap();
        }
        bp.finalize().unwrap();

        // Offline pass: the replay sees the identical sequence and attrs.
        let mut file = FileSource::open(&path).unwrap();
        assert_eq!(file.len(), 3);
        assert!(!file.is_empty());
        let mut file_steps = Vec::new();
        while let Some(data) = file.next_step().unwrap() {
            assert_eq!(data.attr("kind"), Some(&AttrValue::Str("source-test".into())));
            file_steps.push(data.step());
        }
        assert_eq!(file_steps, live_steps);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_a_file_error() {
        assert!(matches!(
            FileSource::open("/nonexistent/replay.bp"),
            Err(SourceError::File(_))
        ));
    }
}
