//! The step log and its writer/reader groups.
//!
//! One [`StreamEngine`] owns a bounded log of *sealed* global steps. A
//! writer group of `N` ranks contributes per-rank fragments through
//! [`StepWriter`] handles; when all `N` fragments of the lowest staged
//! step are present, the step *seals* — it is appended to the log at the
//! next log offset and becomes visible to every cursor at once. Reader
//! cursors ([`StreamReader`]) consume the log independently: each named
//! cursor has a durable position that survives its handles being dropped,
//! which is what makes mid-stream restart lossless.
//!
//! Flow control composes three gates on the write path:
//!
//! * the **retention bound** — at most `retention` sealed steps are held;
//!   a step is truncated from the front only once *every registered*
//!   cursor has consumed it, so a detached (restarting) reader holds its
//!   place and eventually backpressures the writers instead of losing
//!   steps;
//! * **per-reader windows** — an attached cursor may advertise a window
//!   `w`; writers block while that cursor lags `w` or more steps behind
//!   the seal frontier;
//! * the **pause gate** — [`StepWriter::pause`] stops new fragments and
//!   drains the sealed backlog through every attached cursor, with the
//!   same typed-outcome contract as the staged channel
//!   ([`datatap::PauseAborted`]): an abort by failure or close is an
//!   error, never a success-shaped count, and the gate survives a racing
//!   [`StepWriter::resume`] until the drain completes.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use adios::{AttrValue, StepData};
use datatap::{Clock, PauseAborted, PullSource, StepMeta, WallClock};
use evpath::{Event, OverlaySender, StoneId};
use parking_lot::{Condvar, Mutex};
use sim_core::SimDuration;
use simtel::{Category, Telemetry};

/// Shape of a stream: the writer-group width and the log bounds.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Writer ranks: every global step seals from exactly this many
    /// fragments.
    pub writers: u32,
    /// Sealed steps retained in the log. Writers block rather than seal
    /// past this bound while any registered cursor still needs the oldest
    /// retained step.
    pub retention: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig { writers: 1, retention: 4 }
    }
}

/// Why a fragment could not be accepted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamWriteError {
    /// The log is at its retention bound (or an attached cursor's window
    /// is exhausted) and the write would have to block.
    WindowFull,
    /// The engine was closed.
    Closed,
    /// The writer group is paused by a control action.
    Paused,
    /// The engine failed (endpoint crash injected via
    /// [`StepWriter::fail`]).
    Failed(&'static str),
    /// The fragment's rank is outside the configured writer group.
    RankOutOfRange {
        /// The offending rank.
        rank: u32,
        /// The configured group width.
        writers: u32,
    },
    /// The fragment's step index does not exceed the rank's previous
    /// fragment (per-rank step sequences must be strictly increasing).
    StaleStep {
        /// The offending step index.
        step: u64,
        /// The rank's last accepted step index.
        last: u64,
    },
}

impl std::fmt::Display for StreamWriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamWriteError::WindowFull => write!(f, "stream window full"),
            StreamWriteError::Closed => write!(f, "stream closed"),
            StreamWriteError::Paused => write!(f, "writer group paused"),
            StreamWriteError::Failed(reason) => write!(f, "stream failed: {reason}"),
            StreamWriteError::RankOutOfRange { rank, writers } => {
                write!(f, "rank {rank} outside writer group of {writers}")
            }
            StreamWriteError::StaleStep { step, last } => {
                write!(f, "step {step} not after the rank's last step {last}")
            }
        }
    }
}

impl std::error::Error for StreamWriteError {}

/// Where a cursor starts when a reader attaches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Attach {
    /// At the oldest retained sealed step.
    Oldest,
    /// At the current step: the next step to seal. This is the late-join
    /// position — a reader attaching while step `k` is being assembled
    /// receives `k, k+1, …` and none of the history.
    Current,
    /// At the cursor's durable position from a previous attachment — the
    /// restart path. Fails if the cursor name was never registered.
    Resume,
}

/// Why a reader could not attach.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AttachError {
    /// The named cursor already has live handles; clone the existing
    /// [`StreamReader`] to share its position instead.
    Busy(String),
    /// [`Attach::Resume`] named a cursor that was never registered.
    Unknown(String),
}

impl std::fmt::Display for AttachError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttachError::Busy(name) => write!(f, "cursor '{name}' already attached"),
            AttachError::Unknown(name) => write!(f, "cursor '{name}' was never registered"),
        }
    }
}

impl std::error::Error for AttachError {}

/// One sealed global step: the `N` rank fragments assembled into a single
/// log entry, plus the union of their step attributes.
#[derive(Clone, Debug)]
pub struct GlobalStep {
    /// The application's step index (shared by all fragments).
    pub index: u64,
    /// The log offset this step sealed at (0, 1, 2, … in seal order).
    pub offset: u64,
    /// The fragments in rank order (`fragments.len()` equals the writer
    /// group width).
    pub fragments: Vec<StepData>,
    /// Step attributes merged across fragments in rank order (later ranks
    /// win on key collision) — the provenance surface of the step.
    pub attrs: BTreeMap<String, AttrValue>,
}

/// A control-plane announcement published to the engine's overlay stone
/// (when one is wired via [`StreamBuilder::control`]).
#[derive(Clone, Debug)]
pub enum StreamControl {
    /// A global step sealed into the log.
    Sealed {
        /// The application step index.
        step: u64,
        /// The log offset it sealed at.
        offset: u64,
    },
    /// A reader cursor attached.
    Attached {
        /// Cursor name.
        reader: String,
        /// The log offset it will consume next.
        at: u64,
    },
    /// A cursor's last handle was dropped; its position stays registered.
    Detached {
        /// Cursor name.
        reader: String,
        /// The durable log offset it parked at.
        at: u64,
    },
    /// A cursor was retired: unregistered, releasing its retention hold.
    Retired {
        /// Cursor name.
        reader: String,
    },
    /// The writer group paused.
    Paused,
    /// The writer group resumed.
    Resumed,
    /// The engine closed.
    Closed,
    /// The engine failed.
    Failed {
        /// The injected failure reason.
        reason: &'static str,
    },
}

struct CursorState {
    /// Log offset of the next step this cursor consumes.
    next: u64,
    /// Fragment position within that step (for fragment-at-a-time pulls).
    frag: usize,
    /// Live [`StreamReader`] handles on this cursor.
    handles: usize,
    /// Advertised flow-control window, in sealed steps.
    window: Option<usize>,
}

struct LogState {
    sealed: VecDeque<Arc<GlobalStep>>,
    /// Log offset of `sealed.front()`.
    base: u64,
    /// Incomplete steps keyed by application step index: one rank-indexed
    /// fragment slot vector per step.
    staging: BTreeMap<u64, Vec<Option<StepData>>>,
    /// Last accepted step index per rank (enforces strict per-rank
    /// monotonicity).
    last_step: Vec<Option<u64>>,
    cursors: BTreeMap<String, CursorState>,
    writer_handles: usize,
    paused: bool,
    /// Active pause drains; the write gate is held while non-zero even if
    /// a concurrent resume cleared `paused` (same contract as the staged
    /// channel).
    drainers: usize,
    closed: bool,
    failed: Option<&'static str>,
    sealed_total: u64,
}

impl LogState {
    /// Log offset one past the newest sealed step.
    fn frontier(&self) -> u64 {
        self.base + self.sealed.len() as u64
    }

    fn write_gated(&self) -> bool {
        self.paused || self.drainers > 0
    }

    /// True while a write must wait for readers: the retention bound is
    /// hit, or an attached cursor's advertised window is exhausted.
    fn window_blocked(&self, retention: usize) -> bool {
        if self.sealed.len() >= retention {
            return true;
        }
        let frontier = self.frontier();
        self.cursors.values().any(|c| {
            c.handles > 0
                && c.window.is_some_and(|w| frontier.saturating_sub(c.next) >= w as u64)
        })
    }

    /// Sealed steps not yet consumed by the slowest attached cursor.
    fn backlog(&self) -> usize {
        let frontier = self.frontier();
        self.cursors
            .values()
            .filter(|c| c.handles > 0)
            .map(|c| (frontier.saturating_sub(c.next)) as usize)
            .max()
            .unwrap_or(0)
    }
}

struct Inner {
    cfg: StreamConfig,
    state: Mutex<LogState>,
    writer_cv: Condvar,
    reader_cv: Condvar,
    clock: Arc<dyn Clock>,
    telemetry: Telemetry,
    control: Option<(OverlaySender, StoneId)>,
}

impl Inner {
    fn announce(&self, msg: StreamControl) {
        if let Some((sender, stone)) = &self.control {
            sender.submit(*stone, Event::new(msg));
        }
    }

    fn gauge_retained(&self, st: &LogState) {
        if self.telemetry.enabled(Category::Transport) {
            self.telemetry.gauge(
                Category::Transport,
                "stream.retained",
                self.clock.now(),
                st.sealed.len() as f64,
            );
        }
    }

    /// Seals every complete step at the staging front. Per-rank step
    /// sequences are strictly increasing, so once the lowest staged step
    /// has all its fragments no later arrival can precede it.
    fn seal_ready(&self, st: &mut LogState) {
        while let Some(&step) = st.staging.keys().next() {
            let complete =
                st.staging.get(&step).is_some_and(|slots| slots.iter().all(Option::is_some));
            if !complete {
                break;
            }
            let Some(slots) = st.staging.remove(&step) else { break };
            let fragments: Vec<StepData> = slots.into_iter().flatten().collect();
            let mut attrs = BTreeMap::new();
            for frag in &fragments {
                for (key, value) in frag.attrs() {
                    attrs.insert(key.to_string(), value.clone());
                }
            }
            let offset = st.frontier();
            st.sealed.push_back(Arc::new(GlobalStep { index: step, offset, fragments, attrs }));
            st.sealed_total += 1;
            self.telemetry.count(Category::Transport, "stream.sealed", 1);
            self.gauge_retained(st);
            self.announce(StreamControl::Sealed { step, offset });
            self.reader_cv.notify_all();
        }
    }

    /// Drops sealed steps every registered cursor has passed. With no
    /// cursors registered nothing holds history, so the log truncates
    /// freely (fire-and-forget mode).
    fn truncate(&self, st: &mut LogState) {
        let mut dropped = false;
        while !st.sealed.is_empty() && st.cursors.values().all(|c| c.next > st.base) {
            st.sealed.pop_front();
            st.base += 1;
            dropped = true;
        }
        if dropped {
            self.telemetry.count(Category::Transport, "stream.truncated", 1);
            self.gauge_retained(st);
            self.writer_cv.notify_all();
        }
    }

    fn close(&self) {
        let mut st = self.state.lock();
        if !st.closed {
            st.closed = true;
            self.announce(StreamControl::Closed);
        }
        self.writer_cv.notify_all();
        self.reader_cv.notify_all();
    }
}

/// Builds a [`StreamEngine`] with optional clock, telemetry, and
/// control-plane wiring.
pub struct StreamBuilder {
    cfg: StreamConfig,
    clock: Arc<dyn Clock>,
    telemetry: Telemetry,
    control: Option<(OverlaySender, StoneId)>,
}

impl StreamBuilder {
    /// Injects the engine's time source (a [`datatap::ManualClock`] makes
    /// every timeout deterministic).
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> StreamBuilder {
        self.clock = clock;
        self
    }

    /// Records seal/delivery/pause flow under [`Category::Transport`].
    pub fn telemetry(mut self, telemetry: Telemetry) -> StreamBuilder {
        self.telemetry = telemetry;
        self
    }

    /// Publishes [`StreamControl`] announcements to `stone` on the given
    /// overlay sender.
    pub fn control(mut self, sender: OverlaySender, stone: StoneId) -> StreamBuilder {
        self.control = Some((sender, stone));
        self
    }

    /// Finishes the engine.
    ///
    /// # Panics
    /// Panics if the configured writer-group width or retention is zero.
    pub fn build(self) -> StreamEngine {
        assert!(self.cfg.writers >= 1, "writer group must have at least one rank");
        assert!(self.cfg.retention >= 1, "retention must hold at least one step");
        let writers = self.cfg.writers as usize;
        StreamEngine {
            inner: Arc::new(Inner {
                cfg: self.cfg,
                state: Mutex::new(LogState {
                    sealed: VecDeque::new(),
                    base: 0,
                    staging: BTreeMap::new(),
                    last_step: vec![None; writers],
                    cursors: BTreeMap::new(),
                    writer_handles: 0,
                    paused: false,
                    drainers: 0,
                    closed: false,
                    failed: None,
                    sealed_total: 0,
                }),
                writer_cv: Condvar::new(),
                reader_cv: Condvar::new(),
                clock: self.clock,
                telemetry: self.telemetry,
                control: self.control,
            }),
        }
    }
}

/// The step log plus its writer group and reader cursors. Clonable — all
/// clones share the one log.
#[derive(Clone)]
pub struct StreamEngine {
    inner: Arc<Inner>,
}

impl StreamEngine {
    /// Creates an engine on the wall clock with no telemetry.
    ///
    /// # Panics
    /// Panics if the configured writer-group width or retention is zero.
    pub fn new(cfg: StreamConfig) -> StreamEngine {
        StreamEngine::builder(cfg).build()
    }

    /// Starts a [`StreamBuilder`] for clock/telemetry/control wiring.
    pub fn builder(cfg: StreamConfig) -> StreamBuilder {
        StreamBuilder {
            cfg,
            clock: Arc::new(WallClock::new()),
            telemetry: Telemetry::disabled(),
            control: None,
        }
    }

    /// Opens a writer handle for `rank`. When the last writer handle
    /// drops, the engine closes (readers drain the log, then end).
    ///
    /// # Panics
    /// Panics if `rank` is outside the configured writer group.
    pub fn writer(&self, rank: u32) -> StepWriter {
        assert!(rank < self.inner.cfg.writers, "rank outside the writer group");
        let mut st = self.inner.state.lock();
        st.writer_handles += 1;
        drop(st);
        StepWriter { inner: self.inner.clone(), rank }
    }

    /// Attaches a reader to the named cursor at the given position. The
    /// cursor's position is durable: dropping every handle *detaches* but
    /// keeps the position registered, so a later [`Attach::Resume`]
    /// continues with no step duplicated or lost. `window`, when given,
    /// bounds how far the seal frontier may run ahead of this cursor
    /// while it is attached.
    pub fn reader(
        &self,
        name: impl Into<String>,
        attach: Attach,
        window: Option<usize>,
    ) -> Result<StreamReader, AttachError> {
        let name = name.into();
        let mut st = self.inner.state.lock();
        let frontier = st.frontier();
        let base = st.base;
        let at = match st.cursors.get_mut(&name) {
            Some(cursor) => {
                if cursor.handles > 0 {
                    return Err(AttachError::Busy(name));
                }
                match attach {
                    Attach::Oldest => {
                        cursor.next = base;
                        cursor.frag = 0;
                    }
                    Attach::Current => {
                        cursor.next = frontier;
                        cursor.frag = 0;
                    }
                    Attach::Resume => {}
                }
                cursor.handles = 1;
                cursor.window = window;
                cursor.next
            }
            None => {
                if matches!(attach, Attach::Resume) {
                    return Err(AttachError::Unknown(name));
                }
                let next = if matches!(attach, Attach::Current) { frontier } else { base };
                st.cursors
                    .insert(name.clone(), CursorState { next, frag: 0, handles: 1, window });
                next
            }
        };
        drop(st);
        self.inner.announce(StreamControl::Attached { reader: name.clone(), at });
        Ok(StreamReader { inner: self.inner.clone(), name })
    }

    /// Closes the engine: writers fail with [`StreamWriteError::Closed`],
    /// readers drain the retained log and then end, active pause drains
    /// abort with [`PauseAborted::Closed`].
    pub fn close(&self) {
        self.inner.close();
    }

    /// Global steps sealed over the engine's lifetime.
    pub fn sealed_steps(&self) -> u64 {
        self.inner.state.lock().sealed_total
    }

    /// Sealed steps currently retained in the log.
    pub fn retained(&self) -> usize {
        self.inner.state.lock().sealed.len()
    }

    /// The engine's time source.
    pub fn clock(&self) -> Arc<dyn Clock> {
        self.inner.clock.clone()
    }
}

/// One rank's writer handle into the stream's writer group.
pub struct StepWriter {
    inner: Arc<Inner>,
    rank: u32,
}

impl Clone for StepWriter {
    fn clone(&self) -> StepWriter {
        let mut st = self.inner.state.lock();
        st.writer_handles += 1;
        drop(st);
        StepWriter { inner: self.inner.clone(), rank: self.rank }
    }
}

impl Drop for StepWriter {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock();
        st.writer_handles -= 1;
        let last = st.writer_handles == 0 && !st.closed;
        if last {
            st.closed = true;
        }
        drop(st);
        if last {
            self.inner.announce(StreamControl::Closed);
            self.inner.writer_cv.notify_all();
            self.inner.reader_cv.notify_all();
        }
    }
}

impl StepWriter {
    /// This handle's rank within the writer group.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// A handle for another rank of the same group.
    pub fn with_rank(&self, rank: u32) -> StepWriter {
        assert!(rank < self.inner.cfg.writers, "rank outside the writer group");
        let clone = self.clone();
        StepWriter { inner: clone.inner.clone(), rank }
    }

    fn check(&self, st: &LogState, step: u64) -> Result<(), StreamWriteError> {
        if let Some(reason) = st.failed {
            return Err(StreamWriteError::Failed(reason));
        }
        if st.closed {
            return Err(StreamWriteError::Closed);
        }
        if self.rank >= self.inner.cfg.writers {
            return Err(StreamWriteError::RankOutOfRange {
                rank: self.rank,
                writers: self.inner.cfg.writers,
            });
        }
        if let Some(Some(last)) = st.last_step.get(self.rank as usize) {
            if step <= *last {
                return Err(StreamWriteError::StaleStep { step, last: *last });
            }
        }
        Ok(())
    }

    fn push(&self, st: &mut LogState, data: StepData) -> StepMeta {
        let step = data.step();
        let meta = StepMeta { step, bytes: data.payload_bytes(), writer: self.rank };
        if let Some(slot) = st.last_step.get_mut(self.rank as usize) {
            *slot = Some(step);
        }
        let writers = self.inner.cfg.writers as usize;
        let slots = st.staging.entry(step).or_insert_with(|| vec![None; writers]);
        if let Some(slot) = slots.get_mut(self.rank as usize) {
            *slot = Some(data);
        }
        self.inner.telemetry.count(Category::Transport, "stream.announced", 1);
        self.inner.seal_ready(st);
        meta
    }

    /// Contributes this rank's fragment for a step without blocking.
    /// Fragment step indices must be strictly increasing per rank; the
    /// step seals when every rank's fragment has arrived.
    pub fn try_write(&self, data: StepData) -> Result<StepMeta, StreamWriteError> {
        let mut st = self.inner.state.lock();
        self.check(&st, data.step())?;
        if st.write_gated() {
            return Err(StreamWriteError::Paused);
        }
        if st.window_blocked(self.inner.cfg.retention) {
            return Err(StreamWriteError::WindowFull);
        }
        Ok(self.push(&mut st, data))
    }

    /// As [`StepWriter::try_write`], but blocks while the pause gate is
    /// held or the retention/window bounds require readers to catch up —
    /// reader-side flow control backpressuring the application.
    pub fn write(&self, data: StepData) -> Result<StepMeta, StreamWriteError> {
        let mut st = self.inner.state.lock();
        loop {
            self.check(&st, data.step())?;
            if !st.write_gated() && !st.window_blocked(self.inner.cfg.retention) {
                return Ok(self.push(&mut st, data));
            }
            self.inner.writer_cv.wait(&mut st);
        }
    }

    /// Pauses the writer group and blocks until every *sealed* step has
    /// been consumed by every attached cursor. On success, returns the
    /// backlog that had to drain. Fragments still staging (announced by
    /// some ranks but not yet sealed) survive the pause and seal after
    /// [`StepWriter::resume`] — they were never visible to readers, so
    /// the drain guarantee concerns only announced (sealed) steps.
    ///
    /// The outcome contract is the staged channel's: an abort is a typed
    /// [`PauseAborted`] — [`PauseAborted::Failed`] if the engine failed
    /// mid-drain (retained steps were discarded), [`PauseAborted::Closed`]
    /// if it was closed with steps still undelivered — never a
    /// success-shaped count. The write gate engages before the drain and
    /// survives a concurrent [`StepWriter::resume`] until the drain ends.
    pub fn pause(&self) -> Result<usize, PauseAborted> {
        let mut st = self.inner.state.lock();
        st.paused = true;
        st.drainers += 1;
        let draining = st.backlog();
        self.inner.telemetry.count(Category::Transport, "stream.pauses", 1);
        self.inner.announce(StreamControl::Paused);
        let outcome = loop {
            // Failure first: fail() clears the log, so an empty backlog on
            // a failed engine means steps were discarded, not drained.
            if let Some(reason) = st.failed {
                break Err(PauseAborted::Failed(reason));
            }
            let backlog = st.backlog();
            if backlog == 0 {
                break Ok(draining);
            }
            if st.closed {
                break Err(PauseAborted::Closed { remaining: backlog });
            }
            self.inner.writer_cv.wait(&mut st);
        };
        st.drainers -= 1;
        if outcome.is_err() {
            self.inner.telemetry.count(Category::Transport, "stream.pause_aborts", 1);
        }
        if st.drainers == 0 && !st.paused {
            // A resume landed mid-drain: the gate opens only now.
            self.inner.writer_cv.notify_all();
        }
        outcome
    }

    /// Resumes a paused writer group. If a [`StepWriter::pause`] drain is
    /// still in progress, the paused flag clears immediately but the
    /// write gate stays held until that drain finishes.
    pub fn resume(&self) {
        let mut st = self.inner.state.lock();
        st.paused = false;
        drop(st);
        self.inner.announce(StreamControl::Resumed);
        self.inner.writer_cv.notify_all();
    }

    /// True while writes are rejected: explicitly paused, or quiescing
    /// because a pause drain is still in progress.
    pub fn is_paused(&self) -> bool {
        self.inner.state.lock().write_gated()
    }

    /// Injects an endpoint failure: retained sealed steps and staging
    /// fragments are discarded (they lived in crashed memory), blocked
    /// parties wake with typed errors. Returns the number of global steps
    /// lost (sealed-but-undelivered plus incomplete).
    pub fn fail(&self, reason: &'static str) -> usize {
        let mut st = self.inner.state.lock();
        if st.failed.is_some() {
            return 0;
        }
        st.failed = Some(reason);
        let lost = st.sealed.len() + st.staging.len();
        st.sealed.clear();
        st.staging.clear();
        self.inner.telemetry.count(Category::Transport, "stream.failed_steps", lost as u64);
        drop(st);
        self.inner.announce(StreamControl::Failed { reason });
        self.inner.writer_cv.notify_all();
        self.inner.reader_cv.notify_all();
        lost
    }
}

/// A handle on a named reader cursor. Clones share the cursor's position,
/// so a pool of workers pulling through clones divides the stream between
/// them (the staged channel's work-sharing semantics); independent named
/// cursors each see the full stream.
pub struct StreamReader {
    inner: Arc<Inner>,
    name: String,
}

impl std::fmt::Debug for StreamReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamReader").field("name", &self.name).finish_non_exhaustive()
    }
}

impl Clone for StreamReader {
    fn clone(&self) -> StreamReader {
        let mut st = self.inner.state.lock();
        if let Some(cursor) = st.cursors.get_mut(&self.name) {
            cursor.handles += 1;
        }
        drop(st);
        StreamReader { inner: self.inner.clone(), name: self.name.clone() }
    }
}

impl Drop for StreamReader {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock();
        let Some(cursor) = st.cursors.get_mut(&self.name) else { return };
        cursor.handles -= 1;
        if cursor.handles > 0 {
            return;
        }
        let at = cursor.next;
        drop(st);
        // The cursor stays registered at `at`: the retention gate keeps
        // holding its steps, and window gating stops (a detached reader
        // cannot pull, so its window must not wedge the writers).
        self.inner.announce(StreamControl::Detached { reader: self.name.clone(), at });
        self.inner.writer_cv.notify_all();
    }
}

impl StreamReader {
    /// The cursor's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The log offset of the next step this cursor will consume.
    pub fn position(&self) -> u64 {
        self.inner.state.lock().cursors.get(&self.name).map_or(0, |c| c.next)
    }

    /// Sealed steps waiting for this cursor.
    pub fn queued(&self) -> usize {
        let st = self.inner.state.lock();
        let frontier = st.frontier();
        st.cursors.get(&self.name).map_or(0, |c| frontier.saturating_sub(c.next) as usize)
    }

    /// The failure reason, if the engine has failed.
    pub fn failure(&self) -> Option<&'static str> {
        self.inner.state.lock().failed
    }

    /// The engine's time source (deadlines for the timeout pulls live on
    /// this axis).
    pub fn clock(&self) -> Arc<dyn Clock> {
        self.inner.clock.clone()
    }

    /// Unregisters the cursor entirely, releasing its retention hold: the
    /// log may truncate past its position and a later attach under this
    /// name starts fresh.
    pub fn retire(self) {
        let mut st = self.inner.state.lock();
        st.cursors.remove(&self.name);
        self.inner.truncate(&mut st);
        drop(st);
        self.inner.announce(StreamControl::Retired { reader: self.name.clone() });
        self.inner.writer_cv.notify_all();
        // Drop now runs against an unregistered cursor and is a no-op.
    }

    /// Takes the next fragment at the cursor, advancing the shared
    /// position. `None` when nothing is sealed at the cursor yet.
    fn take_fragment(&self, st: &mut LogState) -> Option<(StepMeta, StepData)> {
        let frontier = st.frontier();
        let (next, frag_ix) = {
            let cursor = st.cursors.get(&self.name)?;
            if cursor.next >= frontier {
                return None;
            }
            (cursor.next, cursor.frag)
        };
        let ix = (next - st.base) as usize;
        let global = st.sealed.get(ix)?.clone();
        let frag = global.fragments.get(frag_ix)?.clone();
        let meta =
            StepMeta { step: global.index, bytes: frag.payload_bytes(), writer: frag_ix as u32 };
        let mut advanced = false;
        if let Some(cursor) = st.cursors.get_mut(&self.name) {
            cursor.frag += 1;
            if cursor.frag >= global.fragments.len() {
                cursor.frag = 0;
                cursor.next += 1;
                advanced = true;
            }
        }
        self.inner.telemetry.count(Category::Transport, "stream.delivered", 1);
        if advanced {
            self.inner.truncate(st);
            self.inner.writer_cv.notify_all();
        }
        Some((meta, frag))
    }

    /// Takes the whole step at the cursor, advancing past it. Fragments
    /// already consumed via [`StreamReader::pull`] are still part of the
    /// returned step (the step is shared, not re-cut).
    fn take_step(&self, st: &mut LogState) -> Option<Arc<GlobalStep>> {
        let frontier = st.frontier();
        let next = {
            let cursor = st.cursors.get(&self.name)?;
            if cursor.next >= frontier {
                return None;
            }
            cursor.next
        };
        let ix = (next - st.base) as usize;
        let global = st.sealed.get(ix)?.clone();
        if let Some(cursor) = st.cursors.get_mut(&self.name) {
            cursor.frag = 0;
            cursor.next += 1;
        }
        self.inner
            .telemetry
            .count(Category::Transport, "stream.delivered", global.fragments.len() as u64);
        self.inner.truncate(st);
        self.inner.writer_cv.notify_all();
        Some(global)
    }

    /// True once the cursor can never produce again: failed, retired, or
    /// closed with the backlog fully consumed.
    fn finished(&self, st: &LogState) -> bool {
        if st.failed.is_some() {
            return true;
        }
        match st.cursors.get(&self.name) {
            None => true,
            Some(cursor) => st.closed && cursor.next >= st.frontier(),
        }
    }

    /// Pulls the next fragment (step-major, rank-minor order), blocking
    /// until one seals. `None` once the engine is closed and this cursor
    /// has consumed everything, or on failure.
    pub fn pull(&self) -> Option<(StepMeta, StepData)> {
        let mut st = self.inner.state.lock();
        loop {
            if let Some(out) = self.take_fragment(&mut st) {
                return Some(out);
            }
            if self.finished(&st) {
                return None;
            }
            self.inner.reader_cv.wait(&mut st);
        }
    }

    /// As [`StreamReader::pull`] with a deadline on the engine's
    /// [`Clock`]; `None` on timeout too.
    pub fn pull_timeout(&self, timeout: Duration) -> Option<(StepMeta, StepData)> {
        let deadline = self.inner.clock.now() + to_sim(timeout);
        let mut st = self.inner.state.lock();
        loop {
            if let Some(out) = self.take_fragment(&mut st) {
                return Some(out);
            }
            if self.finished(&st) {
                return None;
            }
            let now = self.inner.clock.now();
            if now >= deadline {
                return None;
            }
            let slice = self.inner.clock.block_slice(deadline.since(now));
            self.inner.reader_cv.wait_for(&mut st, slice);
        }
    }

    /// Pulls the next whole sealed step, blocking until one seals. `None`
    /// once the engine is closed and drained, or on failure.
    pub fn next_step(&self) -> Option<Arc<GlobalStep>> {
        let mut st = self.inner.state.lock();
        loop {
            if let Some(step) = self.take_step(&mut st) {
                return Some(step);
            }
            if self.finished(&st) {
                return None;
            }
            self.inner.reader_cv.wait(&mut st);
        }
    }

    /// As [`StreamReader::next_step`] with a deadline on the engine's
    /// [`Clock`].
    pub fn next_step_timeout(&self, timeout: Duration) -> Option<Arc<GlobalStep>> {
        let deadline = self.inner.clock.now() + to_sim(timeout);
        let mut st = self.inner.state.lock();
        loop {
            if let Some(step) = self.take_step(&mut st) {
                return Some(step);
            }
            if self.finished(&st) {
                return None;
            }
            let now = self.inner.clock.now();
            if now >= deadline {
                return None;
            }
            let slice = self.inner.clock.block_slice(deadline.since(now));
            self.inner.reader_cv.wait_for(&mut st, slice);
        }
    }

    /// Attempts to take the next whole sealed step without blocking.
    pub fn try_next_step(&self) -> Option<Arc<GlobalStep>> {
        let mut st = self.inner.state.lock();
        self.take_step(&mut st)
    }
}

/// Stream cursors plug into [`datatap::ScheduledReader`] like the staged
/// channel's reader does, so one [`datatap::PullPolicy`] layer governs
/// pulls from both transports.
impl PullSource for StreamReader {
    fn pull(&self) -> Option<(StepMeta, StepData)> {
        StreamReader::pull(self)
    }

    fn pull_timeout(&self, timeout: Duration) -> Option<(StepMeta, StepData)> {
        StreamReader::pull_timeout(self, timeout)
    }

    fn clock(&self) -> Arc<dyn Clock> {
        StreamReader::clock(self)
    }
}

fn clamp_u64(ns: u128) -> u64 {
    ns.min(u64::MAX as u128) as u64
}

fn to_sim(d: Duration) -> SimDuration {
    SimDuration::from_nanos(clamp_u64(d.as_nanos()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datatap::ManualClock;
    use sim_core::SimTime;

    fn frag(step: u64, rank: u32) -> StepData {
        let mut s = StepData::new(step);
        s.set_attr("rank", AttrValue::Int(rank as i64));
        s
    }

    fn engine(writers: u32, retention: usize) -> StreamEngine {
        StreamEngine::builder(StreamConfig { writers, retention })
            .clock(Arc::new(ManualClock::new()))
            .build()
    }

    #[test]
    fn steps_seal_only_when_every_rank_contributed() {
        let eng = engine(2, 8);
        let w0 = eng.writer(0);
        let w1 = eng.writer(1);
        let r = eng.reader("viz", Attach::Oldest, None).unwrap();
        w0.try_write(frag(0, 0)).unwrap();
        assert_eq!(eng.sealed_steps(), 0);
        assert!(r.try_next_step().is_none(), "half a step must stay invisible");
        w1.try_write(frag(0, 1)).unwrap();
        assert_eq!(eng.sealed_steps(), 1);
        let step = r.try_next_step().unwrap();
        assert_eq!(step.index, 0);
        assert_eq!(step.offset, 0);
        assert_eq!(step.fragments.len(), 2);
        assert_eq!(step.attrs.get("rank"), Some(&AttrValue::Int(1)), "later rank wins the merge");
    }

    #[test]
    fn rank_skew_still_seals_in_step_order() {
        let eng = engine(2, 8);
        let w0 = eng.writer(0);
        let w1 = eng.writer(1);
        // Rank 0 runs three steps ahead before rank 1 contributes at all.
        w0.try_write(frag(0, 0)).unwrap();
        w0.try_write(frag(1, 0)).unwrap();
        w0.try_write(frag(2, 0)).unwrap();
        assert_eq!(eng.sealed_steps(), 0, "no step seals on one rank's fragments alone");
        w1.try_write(frag(0, 1)).unwrap();
        w1.try_write(frag(1, 1)).unwrap();
        assert_eq!(eng.sealed_steps(), 2, "the laggard's fragments seal the waiting steps");
        w1.try_write(frag(2, 1)).unwrap();
        let r = eng.reader("viz", Attach::Oldest, None).unwrap();
        let got: Vec<u64> = std::iter::from_fn(|| r.try_next_step()).map(|s| s.index).collect();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn per_rank_steps_must_strictly_increase() {
        let eng = engine(1, 8);
        let w = eng.writer(0);
        w.try_write(frag(3, 0)).unwrap();
        assert_eq!(
            w.try_write(frag(3, 0)).unwrap_err(),
            StreamWriteError::StaleStep { step: 3, last: 3 }
        );
        assert_eq!(
            w.try_write(frag(1, 0)).unwrap_err(),
            StreamWriteError::StaleStep { step: 1, last: 3 }
        );
        // Gaps are fine: step indices need not be contiguous.
        w.try_write(frag(10, 0)).unwrap();
        assert_eq!(eng.sealed_steps(), 2);
    }

    #[test]
    fn fragment_pulls_are_step_major_rank_minor() {
        let eng = engine(3, 8);
        // Keep every rank's handle alive: the engine closes when the last
        // writer handle drops.
        let group: Vec<StepWriter> = (0..3).map(|rank| eng.writer(rank)).collect();
        for (rank, w) in group.iter().enumerate() {
            w.try_write(frag(0, rank as u32)).unwrap();
            w.try_write(frag(1, rank as u32)).unwrap();
        }
        let r = eng.reader("frags", Attach::Oldest, None).unwrap();
        let mut seen = Vec::new();
        for _ in 0..6 {
            let (meta, data) = r.pull_timeout(Duration::ZERO).unwrap();
            assert_eq!(meta.step, data.step());
            seen.push((meta.step, meta.writer));
        }
        assert_eq!(seen, vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]);
        assert_eq!(r.queued(), 0);
    }

    #[test]
    fn retention_blocks_try_write_until_readers_advance() {
        let eng = engine(1, 2);
        let w = eng.writer(0);
        let r = eng.reader("slow", Attach::Oldest, None).unwrap();
        w.try_write(frag(0, 0)).unwrap();
        w.try_write(frag(1, 0)).unwrap();
        assert_eq!(w.try_write(frag(2, 0)).unwrap_err(), StreamWriteError::WindowFull);
        assert!(r.next_step().is_some());
        // Consuming step 0 truncates it (the only cursor passed it).
        assert_eq!(eng.retained(), 1);
        w.try_write(frag(2, 0)).unwrap();
    }

    #[test]
    fn attached_window_gates_the_writer() {
        let eng = engine(1, 8);
        let w = eng.writer(0);
        let r = eng.reader("windowed", Attach::Oldest, Some(1)).unwrap();
        w.try_write(frag(0, 0)).unwrap();
        assert_eq!(
            w.try_write(frag(1, 0)).unwrap_err(),
            StreamWriteError::WindowFull,
            "a window of 1 admits one undelivered step"
        );
        assert!(r.next_step().is_some());
        w.try_write(frag(1, 0)).unwrap();
        // A detached cursor's window must not wedge the writers.
        drop(r);
        w.try_write(frag(2, 0)).unwrap();
        w.try_write(frag(3, 0)).unwrap();
    }

    #[test]
    fn late_joiner_attaches_at_the_current_step() {
        let eng = engine(1, 8);
        let w = eng.writer(0);
        for step in 0..3 {
            w.try_write(frag(step, 0)).unwrap();
        }
        let late = eng.reader("late", Attach::Current, None).unwrap();
        assert!(late.try_next_step().is_none(), "history is skipped");
        w.try_write(frag(3, 0)).unwrap();
        let got = late.try_next_step().unwrap();
        assert_eq!(got.index, 3, "the late joiner starts at the step sealed after attach");
        assert_eq!(got.attrs.get("rank"), Some(&AttrValue::Int(0)), "attributes flow");
    }

    #[test]
    fn detached_cursor_resumes_with_no_dup_or_loss() {
        let eng = engine(1, 8);
        let w = eng.writer(0);
        for step in 0..4 {
            w.try_write(frag(step, 0)).unwrap();
        }
        let r = eng.reader("restart", Attach::Oldest, None).unwrap();
        assert_eq!(r.try_next_step().unwrap().index, 0);
        assert_eq!(r.try_next_step().unwrap().index, 1);
        drop(r); // the reader dies mid-stream
        assert_eq!(eng.retained(), 2, "the parked cursor holds its unread steps");
        w.try_write(frag(4, 0)).unwrap();
        let r = eng.reader("restart", Attach::Resume, None).unwrap();
        let got: Vec<u64> = std::iter::from_fn(|| r.try_next_step()).map(|s| s.index).collect();
        assert_eq!(got, vec![2, 3, 4], "rejoin continues exactly where the crash left off");
    }

    #[test]
    fn resume_of_an_unknown_cursor_is_an_error() {
        let eng = engine(1, 4);
        assert_eq!(
            eng.reader("ghost", Attach::Resume, None).unwrap_err(),
            AttachError::Unknown("ghost".into())
        );
        let _r = eng.reader("live", Attach::Oldest, None).unwrap();
        assert_eq!(
            eng.reader("live", Attach::Resume, None).unwrap_err(),
            AttachError::Busy("live".into())
        );
    }

    #[test]
    fn cloned_handles_share_the_cursor_position() {
        let eng = engine(1, 8);
        let w = eng.writer(0);
        for step in 0..4 {
            w.try_write(frag(step, 0)).unwrap();
        }
        let a = eng.reader("pool", Attach::Oldest, None).unwrap();
        let b = a.clone();
        assert_eq!(a.try_next_step().unwrap().index, 0);
        assert_eq!(b.try_next_step().unwrap().index, 1, "clones divide the stream");
        drop(a);
        assert_eq!(b.try_next_step().unwrap().index, 2, "one live handle keeps it attached");
    }

    #[test]
    fn retire_releases_the_retention_hold() {
        let eng = engine(1, 2);
        let w = eng.writer(0);
        let r = eng.reader("archival", Attach::Oldest, None).unwrap();
        w.try_write(frag(0, 0)).unwrap();
        w.try_write(frag(1, 0)).unwrap();
        assert_eq!(w.try_write(frag(2, 0)).unwrap_err(), StreamWriteError::WindowFull);
        r.retire();
        w.try_write(frag(2, 0)).unwrap();
        assert_eq!(
            eng.reader("archival", Attach::Resume, None).unwrap_err(),
            AttachError::Unknown("archival".into()),
            "retirement forgets the position"
        );
    }

    #[test]
    fn pause_drains_the_backlog_and_reports_it() {
        let eng = engine(1, 8);
        let w = eng.writer(0);
        let r = eng.reader("sink", Attach::Oldest, None).unwrap();
        for step in 0..3 {
            w.try_write(frag(step, 0)).unwrap();
        }
        let w2 = w.clone();
        let pauser = std::thread::spawn(move || w2.pause());
        for _ in 0..3 {
            assert!(r.next_step().is_some());
        }
        assert_eq!(pauser.join().unwrap(), Ok(3));
        assert!(w.is_paused());
        assert_eq!(w.try_write(frag(9, 0)).unwrap_err(), StreamWriteError::Paused);
        w.resume();
        w.try_write(frag(9, 0)).unwrap();
    }

    #[test]
    fn pause_aborted_by_fail_is_a_typed_error() {
        let eng = engine(1, 8);
        let w = eng.writer(0);
        let _r = eng.reader("sink", Attach::Oldest, None).unwrap();
        w.try_write(frag(0, 0)).unwrap();
        let w2 = w.clone();
        let pauser = std::thread::spawn(move || w2.pause());
        // Nobody pulls: the drain can only end through the failure.
        assert_eq!(w.fail("injected crash"), 1);
        assert_eq!(pauser.join().unwrap(), Err(PauseAborted::Failed("injected crash")));
    }

    #[test]
    fn pause_aborted_by_close_reports_the_backlog() {
        let eng = engine(1, 8);
        let w = eng.writer(0);
        let _r = eng.reader("sink", Attach::Oldest, None).unwrap();
        w.try_write(frag(0, 0)).unwrap();
        w.try_write(frag(1, 0)).unwrap();
        let w2 = w.clone();
        let pauser = std::thread::spawn(move || w2.pause());
        eng.close();
        assert_eq!(pauser.join().unwrap(), Err(PauseAborted::Closed { remaining: 2 }));
    }

    #[test]
    fn staging_fragments_survive_a_pause() {
        let eng = engine(2, 8);
        let w0 = eng.writer(0);
        let w1 = eng.writer(1);
        let _r = eng.reader("sink", Attach::Oldest, None).unwrap();
        w0.try_write(frag(0, 0)).unwrap();
        // Step 0 is incomplete: the drain must not wait for it (rank 1 is
        // write-gated and could never complete it).
        assert_eq!(w0.pause(), Ok(0));
        w0.resume();
        w1.try_write(frag(0, 1)).unwrap();
        assert_eq!(eng.sealed_steps(), 1, "the staged fragment sealed after resume");
    }

    #[test]
    fn close_lets_readers_drain_then_end() {
        let eng = engine(1, 8);
        let w = eng.writer(0);
        let r = eng.reader("sink", Attach::Oldest, None).unwrap();
        w.try_write(frag(0, 0)).unwrap();
        drop(w); // last writer handle: the engine closes
        assert_eq!(r.next_step().unwrap().index, 0);
        assert!(r.next_step().is_none());
        assert!(r.pull().is_none());
    }

    #[test]
    fn fail_discards_the_log_and_unblocks_readers() {
        let eng = engine(2, 8);
        let w0 = eng.writer(0);
        let w1 = eng.writer(1);
        let r = eng.reader("sink", Attach::Oldest, None).unwrap();
        w0.try_write(frag(0, 0)).unwrap();
        w1.try_write(frag(0, 1)).unwrap();
        w0.try_write(frag(1, 0)).unwrap(); // staging, incomplete
        assert_eq!(w0.fail("node crash"), 2, "one sealed and one staging step lost");
        assert!(r.pull().is_none());
        assert_eq!(r.failure(), Some("node crash"));
        assert_eq!(w1.try_write(frag(1, 1)).unwrap_err(), StreamWriteError::Failed("node crash"));
    }

    #[test]
    fn timeout_pulls_are_virtual_under_a_manual_clock() {
        let clock = Arc::new(ManualClock::new());
        let eng = StreamEngine::builder(StreamConfig { writers: 1, retention: 4 })
            .clock(clock.clone())
            .build();
        let _w = eng.writer(0);
        let r = eng.reader("sink", Attach::Oldest, None).unwrap();
        // An hour-long wait returns immediately by advancing virtual time.
        assert!(r.next_step_timeout(Duration::from_secs(3600)).is_none());
        assert_eq!(clock.now(), SimTime::from_secs(3600));
        assert!(r.pull_timeout(Duration::from_secs(30)).is_none());
        assert_eq!(clock.now(), SimTime::from_secs(3630));
    }

    #[test]
    fn telemetry_counts_the_flow() {
        use simtel::TelemetryConfig;
        let tel = Telemetry::new(TelemetryConfig::all());
        let eng = StreamEngine::builder(StreamConfig { writers: 2, retention: 4 })
            .clock(Arc::new(ManualClock::new()))
            .telemetry(tel.clone())
            .build();
        let w0 = eng.writer(0);
        let w1 = eng.writer(1);
        let r = eng.reader("sink", Attach::Oldest, None).unwrap();
        w0.try_write(frag(0, 0)).unwrap();
        w1.try_write(frag(0, 1)).unwrap();
        assert!(r.next_step().is_some());
        assert_eq!(tel.counter("stream.announced"), 2);
        assert_eq!(tel.counter("stream.sealed"), 1);
        assert_eq!(tel.counter("stream.delivered"), 2, "a whole step counts its fragments");
    }
}
