//! Property tests of overlay dispatch semantics.

use std::sync::{Arc, Mutex};

use evpath::{Action, Event, Overlay};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A filter → transform pipeline delivers exactly the matching
    /// elements, transformed, in submission order.
    #[test]
    fn filter_transform_is_exact(
        values in proptest::collection::vec(any::<u32>(), 0..200),
        modulus in 1u32..10,
        scale in 1u32..100
    ) {
        let ov = Overlay::new("prop");
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s = seen.clone();
        let sink = ov.add_stone(Action::Terminal(Box::new(move |ev: Event| {
            s.lock().unwrap().push(*ev.expect::<u64>());
        })));
        let scale64 = scale as u64;
        let tr = ov.add_stone(Action::Transform {
            func: Box::new(move |ev| Some(Event::new(*ev.expect::<u32>() as u64 * scale64))),
            target: sink,
        });
        let m = modulus;
        let filt = ov.add_stone(Action::Filter {
            predicate: Box::new(move |ev| ev.expect::<u32>() % m == 0),
            target: tr,
        });
        for &v in &values {
            ov.submit(filt, Event::new(v));
        }
        ov.flush();
        let expected: Vec<u64> = values
            .iter()
            .filter(|&&v| v % modulus == 0)
            .map(|&v| v as u64 * scale64)
            .collect();
        prop_assert_eq!(seen.lock().unwrap().clone(), expected);
    }

    /// A split to k terminals delivers every event to all k, exactly once.
    #[test]
    fn split_duplicates_to_every_target(
        values in proptest::collection::vec(any::<u16>(), 0..100),
        k in 1usize..6
    ) {
        let ov = Overlay::new("prop");
        let sinks: Vec<Arc<Mutex<Vec<u16>>>> =
            (0..k).map(|_| Arc::new(Mutex::new(Vec::new()))).collect();
        let targets: Vec<_> = sinks
            .iter()
            .map(|s| {
                let s = s.clone();
                ov.add_stone(Action::Terminal(Box::new(move |ev: Event| {
                    s.lock().unwrap().push(*ev.expect::<u16>());
                })))
            })
            .collect();
        let split = ov.add_stone(Action::Split { targets });
        for &v in &values {
            ov.submit(split, Event::new(v));
        }
        ov.flush();
        for sink in &sinks {
            let mut got = sink.lock().unwrap().clone();
            let mut want = values.clone();
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }

    /// A router partitions the stream: every event reaches exactly the
    /// selected target, and the per-target counts add up.
    #[test]
    fn router_partitions_exactly(
        values in proptest::collection::vec(any::<u32>(), 0..200),
        k in 1usize..5
    ) {
        let ov = Overlay::new("prop");
        let sinks: Vec<Arc<Mutex<usize>>> =
            (0..k).map(|_| Arc::new(Mutex::new(0))).collect();
        let targets: Vec<_> = sinks
            .iter()
            .map(|s| {
                let s = s.clone();
                ov.add_stone(Action::Terminal(Box::new(move |_| {
                    *s.lock().unwrap() += 1;
                })))
            })
            .collect();
        let kk = k;
        let router = ov.add_stone(Action::Router {
            func: Box::new(move |ev| Some((*ev.expect::<u32>() as usize) % kk)),
            targets,
        });
        for &v in &values {
            ov.submit(router, Event::new(v));
        }
        ov.flush();
        let total: usize = sinks.iter().map(|s| *s.lock().unwrap()).sum();
        prop_assert_eq!(total, values.len());
        for (ix, sink) in sinks.iter().enumerate() {
            let expected = values.iter().filter(|&&v| (v as usize) % k == ix).count();
            prop_assert_eq!(*sink.lock().unwrap(), expected);
        }
    }
}
