//! The overlay runtime: a worker thread that owns the stone graph and
//! dispatches events through it.
//!
//! All mutation (adding stones, delivering events) flows through one MPSC
//! channel, so the worker needs no locks and events submitted from a single
//! producer are processed in order — the delivery semantics the control
//! protocols rely on. Multiple overlays (one per simulated process) connect
//! via bridge stones, which enqueue into the remote overlay's channel.

// BTreeMap (not HashMap) for the stone table: overlays are queried from
// simulation code, so every container here must have a deterministic order.
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use simtel::{Category, Telemetry};

use crate::event::Event;
use crate::stone::{Action, StoneId};

enum Msg {
    Deliver(StoneId, Event),
    AddStone(StoneId, Action),
    Retarget(StoneId, Vec<StoneId>),
    Flush(Sender<()>),
    Shutdown,
}

/// A clonable handle for submitting events into an overlay (used by bridge
/// stones and by producers on other threads).
#[derive(Clone)]
pub struct OverlaySender {
    tx: Sender<Msg>,
}

impl OverlaySender {
    /// Enqueues `event` for `stone`. Returns `false` if the overlay has shut
    /// down.
    pub fn submit(&self, stone: StoneId, event: Event) -> bool {
        self.tx.send(Msg::Deliver(stone, event)).is_ok()
    }
}

impl fmt::Debug for OverlaySender {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OverlaySender")
    }
}

/// An event overlay: a named stone graph with its own dispatch thread.
pub struct Overlay {
    name: String,
    tx: Sender<Msg>,
    next_stone: Arc<AtomicU32>,
    worker: Option<JoinHandle<()>>,
}

impl Overlay {
    /// Spawns a new overlay with its dispatch thread.
    pub fn new(name: impl Into<String>) -> Overlay {
        Overlay::with_telemetry(name, Telemetry::disabled())
    }

    /// As [`Overlay::new`], but the dispatch thread records delivery and
    /// drop totals through `telemetry` under [`Category::Overlay`]:
    /// `evpath.<name>.delivered`, `evpath.<name>.dropped`, and a
    /// per-stone `evpath.<name>.stone.<id>` counter.
    pub fn with_telemetry(name: impl Into<String>, telemetry: Telemetry) -> Overlay {
        let name = name.into();
        let (tx, rx) = unbounded();
        let thread_name = format!("evpath-{name}");
        let worker_name = name.clone();
        let worker = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || Worker::new(rx, worker_name, telemetry).run())
            .expect("spawn overlay worker");
        Overlay { name, tx, next_stone: Arc::new(AtomicU32::new(0)), worker: Some(worker) }
    }

    /// The overlay's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Installs a stone and returns its id.
    pub fn add_stone(&self, action: Action) -> StoneId {
        let id = StoneId(self.next_stone.fetch_add(1, Ordering::Relaxed));
        self.tx.send(Msg::AddStone(id, action)).expect("overlay worker alive");
        id
    }

    /// Reserves a stone id without installing an action yet. Lets callers
    /// wire cycles or forward references, then install with
    /// [`Overlay::install`].
    pub fn reserve_stone(&self) -> StoneId {
        StoneId(self.next_stone.fetch_add(1, Ordering::Relaxed))
    }

    /// Installs (or replaces) the action of a reserved stone.
    pub fn install(&self, id: StoneId, action: Action) {
        self.tx.send(Msg::AddStone(id, action)).expect("overlay worker alive");
    }

    /// Replaces the target list of a split/router stone in place. Used by
    /// container management to re-wire a pipeline (e.g. when the downstream
    /// container is taken offline) without tearing the overlay down.
    pub fn retarget(&self, id: StoneId, targets: Vec<StoneId>) {
        self.tx.send(Msg::Retarget(id, targets)).expect("overlay worker alive");
    }

    /// Submits an event to a stone.
    pub fn submit(&self, stone: StoneId, event: Event) {
        let _ = self.tx.send(Msg::Deliver(stone, event));
    }

    /// A clonable submission handle (for bridges and producer threads).
    pub fn sender(&self) -> OverlaySender {
        OverlaySender { tx: self.tx.clone() }
    }

    /// Blocks until every message enqueued before this call has been
    /// processed. Events that local stones generate while draining are also
    /// processed before the flush returns (the worker handles them inline).
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = unbounded();
        if self.tx.send(Msg::Flush(ack_tx)).is_ok() {
            let _ = ack_rx.recv();
        }
    }

    /// Stops the dispatch thread after draining messages enqueued so far.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let _ = self.tx.send(Msg::Shutdown);
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Overlay {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl fmt::Debug for Overlay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Overlay").field("name", &self.name).finish()
    }
}

struct Worker {
    rx: Receiver<Msg>,
    stones: BTreeMap<StoneId, Action>,
    telemetry: Telemetry,
    /// Counter-name prefix (`evpath.<name>`), kept for per-stone names.
    prefix: String,
    /// Precomputed `<prefix>.delivered` counter name.
    delivered_key: String,
    /// Precomputed `<prefix>.dropped` counter name.
    dropped_key: String,
    /// Per-stone counter names, allocated on a stone's first delivery
    /// and reused for every one after.
    stone_keys: BTreeMap<StoneId, String>,
    /// Recycled dispatch worklist — drained empty by every dispatch, so
    /// steady-state delivery never reallocates it.
    work: Vec<(StoneId, Event)>,
}

impl Worker {
    fn new(rx: Receiver<Msg>, name: String, telemetry: Telemetry) -> Worker {
        let prefix = format!("evpath.{name}");
        Worker {
            rx,
            stones: BTreeMap::new(),
            telemetry,
            delivered_key: format!("{prefix}.delivered"),
            dropped_key: format!("{prefix}.dropped"),
            stone_keys: BTreeMap::new(),
            work: Vec::new(),
            prefix,
        }
    }

    fn note_delivered(&mut self, id: StoneId) {
        if self.telemetry.enabled(Category::Overlay) {
            self.telemetry.count(Category::Overlay, &self.delivered_key, 1);
            // Split-borrow so the cached name can be lent to the recorder.
            let Worker { stone_keys, telemetry, prefix, .. } = self;
            let key = stone_keys.entry(id).or_insert_with(|| {
                // simlint: allow(alloc-in-hot-path, first delivery to this stone; every later delivery reuses the cached counter name)
                format!("{prefix}.stone.{}", id.0)
            });
            telemetry.count(Category::Overlay, key, 1);
        }
    }

    fn note_dropped(&self) {
        if self.telemetry.enabled(Category::Overlay) {
            self.telemetry.count(Category::Overlay, &self.dropped_key, 1);
        }
    }

    fn run(mut self) {
        while let Ok(msg) = self.rx.recv() {
            match msg {
                Msg::Deliver(stone, event) => self.dispatch(stone, event),
                Msg::AddStone(id, action) => {
                    self.stones.insert(id, action);
                }
                Msg::Retarget(id, new_targets) => match self.stones.get_mut(&id) {
                    Some(Action::Split { targets }) => *targets = new_targets,
                    Some(Action::Router { targets, .. }) => *targets = new_targets,
                    _ => {}
                },
                Msg::Flush(ack) => {
                    let _ = ack.send(());
                }
                Msg::Shutdown => break,
            }
        }
    }

    /// Dispatches an event through the local graph iteratively (a worklist
    /// rather than recursion, so deep pipelines cannot overflow the stack).
    fn dispatch(&mut self, stone: StoneId, event: Event) {
        let mut work = std::mem::take(&mut self.work);
        work.push((stone, event));
        while let Some((id, ev)) = work.pop() {
            if !self.stones.contains_key(&id) {
                self.note_dropped();
                continue;
            }
            self.note_delivered(id);
            let action = self.stones.get_mut(&id).expect("stone present");
            match action {
                Action::Terminal(f) => f(ev),
                Action::Filter { predicate, target } => {
                    if predicate(&ev) {
                        work.push((*target, ev));
                    }
                }
                Action::Transform { func, target } => {
                    if let Some(out) = func(ev) {
                        work.push((*target, out));
                    }
                }
                Action::Split { targets } => {
                    for &t in targets.iter() {
                        // simlint: allow(alloc-in-hot-path, an Event clone is an Arc refcount bump; the payload is shared, not copied)
                        work.push((t, ev.clone()));
                    }
                }
                Action::Router { func, targets } => {
                    if let Some(ix) = func(&ev) {
                        if let Some(&t) = targets.get(ix) {
                            work.push((t, ev));
                        } else {
                            self.note_dropped();
                        }
                    }
                }
                Action::Bridge { remote, target } => {
                    if !remote.submit(*target, ev) {
                        self.note_dropped();
                    }
                }
            }
        }
        // Hand the drained buffer back so the next dispatch reuses it.
        self.work = work;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stone::Action;
    use std::sync::Mutex;

    fn collector() -> (Arc<Mutex<Vec<u64>>>, impl FnMut(Event) + Send) {
        let sink = Arc::new(Mutex::new(Vec::new()));
        let s = sink.clone();
        (sink, move |ev: Event| s.lock().unwrap().push(*ev.expect::<u64>()))
    }

    #[test]
    fn terminal_receives_in_submission_order() {
        let ov = Overlay::new("t");
        let (sink, f) = collector();
        let t = ov.add_stone(Action::Terminal(Box::new(f)));
        for i in 0..100u64 {
            ov.submit(t, Event::new(i));
        }
        ov.flush();
        assert_eq!(*sink.lock().unwrap(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn filter_drops_non_matching() {
        let ov = Overlay::new("t");
        let (sink, f) = collector();
        let t = ov.add_stone(Action::Terminal(Box::new(f)));
        let filt = ov.add_stone(Action::Filter {
            predicate: Box::new(|ev| *ev.expect::<u64>() % 2 == 0),
            target: t,
        });
        for i in 0..10u64 {
            ov.submit(filt, Event::new(i));
        }
        ov.flush();
        assert_eq!(*sink.lock().unwrap(), vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn transform_rewrites_payload() {
        let ov = Overlay::new("t");
        let (sink, f) = collector();
        let t = ov.add_stone(Action::Terminal(Box::new(f)));
        let tr = ov.add_stone(Action::Transform {
            func: Box::new(|ev| Some(Event::new(ev.expect::<u64>() * 10))),
            target: t,
        });
        ov.submit(tr, Event::new(7u64));
        ov.flush();
        assert_eq!(*sink.lock().unwrap(), vec![70]);
    }

    #[test]
    fn split_fans_out_without_copying() {
        let ov = Overlay::new("t");
        let (a_sink, fa) = collector();
        let (b_sink, fb) = collector();
        let a = ov.add_stone(Action::Terminal(Box::new(fa)));
        let b = ov.add_stone(Action::Terminal(Box::new(fb)));
        let split = ov.add_stone(Action::Split { targets: vec![a, b] });
        ov.submit(split, Event::new(5u64));
        ov.flush();
        assert_eq!(*a_sink.lock().unwrap(), vec![5]);
        assert_eq!(*b_sink.lock().unwrap(), vec![5]);
    }

    #[test]
    fn router_selects_target() {
        let ov = Overlay::new("t");
        let (even_sink, fe) = collector();
        let (odd_sink, fo) = collector();
        let even = ov.add_stone(Action::Terminal(Box::new(fe)));
        let odd = ov.add_stone(Action::Terminal(Box::new(fo)));
        let r = ov.add_stone(Action::Router {
            func: Box::new(|ev| Some((*ev.expect::<u64>() % 2) as usize)),
            targets: vec![even, odd],
        });
        for i in 0..6u64 {
            ov.submit(r, Event::new(i));
        }
        ov.flush();
        assert_eq!(*even_sink.lock().unwrap(), vec![0, 2, 4]);
        assert_eq!(*odd_sink.lock().unwrap(), vec![1, 3, 5]);
    }

    #[test]
    fn bridge_crosses_overlays() {
        let remote = Overlay::new("remote");
        let (sink, f) = collector();
        let t = remote.add_stone(Action::Terminal(Box::new(f)));
        let local = Overlay::new("local");
        let b = local.add_stone(Action::Bridge { remote: remote.sender(), target: t });
        local.submit(b, Event::new(9u64));
        local.flush();
        remote.flush();
        assert_eq!(*sink.lock().unwrap(), vec![9]);
    }

    #[test]
    fn unknown_stone_counts_as_dropped() {
        use simtel::TelemetryConfig;
        let tel = Telemetry::new(TelemetryConfig::all());
        let ov = Overlay::with_telemetry("t", tel.clone());
        ov.submit(StoneId(42), Event::new(1u64));
        ov.flush();
        assert_eq!(tel.counter("evpath.t.dropped"), 1);
    }

    #[test]
    fn retarget_rewires_split() {
        let ov = Overlay::new("t");
        let (a_sink, fa) = collector();
        let (b_sink, fb) = collector();
        let a = ov.add_stone(Action::Terminal(Box::new(fa)));
        let b = ov.add_stone(Action::Terminal(Box::new(fb)));
        let split = ov.add_stone(Action::Split { targets: vec![a] });
        ov.submit(split, Event::new(1u64));
        ov.retarget(split, vec![b]);
        ov.submit(split, Event::new(2u64));
        ov.flush();
        assert_eq!(*a_sink.lock().unwrap(), vec![1]);
        assert_eq!(*b_sink.lock().unwrap(), vec![2]);
    }

    #[test]
    fn telemetry_tracks_deliveries_per_stone() {
        use simtel::TelemetryConfig;
        let tel = Telemetry::new(TelemetryConfig::all());
        let ov = Overlay::with_telemetry("t", tel.clone());
        let t = ov.add_stone(Action::Terminal(Box::new(|_| {})));
        for _ in 0..5 {
            ov.submit(t, Event::new(0u64));
        }
        ov.flush();
        assert_eq!(tel.counter("evpath.t.delivered"), 5);
        assert_eq!(tel.counter(&format!("evpath.t.stone.{}", t.0)), 5);
    }

    #[test]
    fn reserved_stone_allows_forward_wiring() {
        let ov = Overlay::new("t");
        let (sink, f) = collector();
        let fwd = ov.reserve_stone();
        let tr =
            ov.add_stone(Action::Transform { func: Box::new(Some), target: fwd });
        ov.install(fwd, Action::Terminal(Box::new(f)));
        ov.submit(tr, Event::new(3u64));
        ov.flush();
        assert_eq!(*sink.lock().unwrap(), vec![3]);
    }

    #[test]
    fn pipeline_of_many_stages_does_not_overflow() {
        let ov = Overlay::new("deep");
        let (sink, f) = collector();
        let mut next = ov.add_stone(Action::Terminal(Box::new(f)));
        for _ in 0..10_000 {
            next = ov.add_stone(Action::Transform {
                func: Box::new(|ev| Some(Event::new(ev.expect::<u64>() + 1))),
                target: next,
            });
        }
        ov.submit(next, Event::new(0u64));
        ov.flush();
        assert_eq!(*sink.lock().unwrap(), vec![10_000]);
    }
}
