//! Stones: the processing vertices of an overlay.
//!
//! A stone either consumes events (terminal), rewrites or drops them
//! (filter/transform), fans them out (split), or picks one of several
//! targets per event (router). Bridge stones hand events to another overlay,
//! which is how cross-process monitoring/control topologies are assembled.

use std::fmt;

use crate::event::Event;
use crate::overlay::OverlaySender;

/// Identifier of a stone within one overlay.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct StoneId(pub u32);

impl fmt::Display for StoneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stone{}", self.0)
    }
}

/// Terminal handler: final consumer of events.
pub type TerminalFn = Box<dyn FnMut(Event) + Send>;
/// Filter predicate: `true` forwards the event, `false` drops it.
pub type FilterFn = Box<dyn FnMut(&Event) -> bool + Send>;
/// Transform: rewrite the event, or drop it by returning `None`.
pub type TransformFn = Box<dyn FnMut(Event) -> Option<Event> + Send>;
/// Router: choose the index of the target to forward to, or `None` to drop.
pub type RouterFn = Box<dyn FnMut(&Event) -> Option<usize> + Send>;

/// The action attached to a stone.
pub enum Action {
    /// Consume events.
    Terminal(TerminalFn),
    /// Forward to `target` when the predicate holds.
    Filter {
        /// The predicate.
        predicate: FilterFn,
        /// Downstream stone.
        target: StoneId,
    },
    /// Rewrite events, forwarding the result to `target`.
    Transform {
        /// The rewriting function.
        func: TransformFn,
        /// Downstream stone.
        target: StoneId,
    },
    /// Fan out each event to every target.
    Split {
        /// Downstream stones.
        targets: Vec<StoneId>,
    },
    /// Forward each event to the target selected by the router function.
    Router {
        /// Selects among `targets`.
        func: RouterFn,
        /// Candidate downstream stones.
        targets: Vec<StoneId>,
    },
    /// Hand events to a stone in another overlay.
    Bridge {
        /// The remote overlay's submission handle.
        remote: OverlaySender,
        /// Target stone in the remote overlay.
        target: StoneId,
    },
}

impl fmt::Debug for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Action::Terminal(_) => "Terminal",
            Action::Filter { .. } => "Filter",
            Action::Transform { .. } => "Transform",
            Action::Split { .. } => "Split",
            Action::Router { .. } => "Router",
            Action::Bridge { .. } => "Bridge",
        };
        write!(f, "Action::{name}")
    }
}
