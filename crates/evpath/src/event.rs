//! Typed events.
//!
//! EVPath events carry dynamically-typed payloads between stones; receivers
//! recover the concrete type with a checked downcast. Payloads are reference
//! counted so a split stone can fan one event out to many targets without
//! copying the (potentially multi-megabyte) data.

use std::any::Any;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_EVENT_ID: AtomicU64 = AtomicU64::new(0);

/// A unique identifier stamped on each event at creation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct EventId(pub u64);

/// An event flowing through an overlay.
///
/// Cloning an event clones the `Arc`, not the payload.
#[derive(Clone)]
pub struct Event {
    id: EventId,
    type_name: &'static str,
    payload: Arc<dyn Any + Send + Sync>,
}

impl Event {
    /// Wraps a payload into an event.
    pub fn new<T: Any + Send + Sync>(payload: T) -> Event {
        Event {
            id: EventId(NEXT_EVENT_ID.fetch_add(1, Ordering::Relaxed)),
            type_name: std::any::type_name::<T>(),
            payload: Arc::new(payload),
        }
    }

    /// The event's unique id.
    pub fn id(&self) -> EventId {
        self.id
    }

    /// Human-readable payload type name (diagnostics only — use
    /// [`Event::get`] for dispatch).
    pub fn type_name(&self) -> &'static str {
        self.type_name
    }

    /// Checked downcast of the payload.
    pub fn get<T: Any + Send + Sync>(&self) -> Option<&T> {
        self.payload.downcast_ref::<T>()
    }

    /// True if the payload is of type `T`.
    pub fn is<T: Any + Send + Sync>(&self) -> bool {
        self.payload.is::<T>()
    }

    /// Downcasts or panics with a descriptive message. Use at stones whose
    /// wiring guarantees the type (e.g. a pipeline stage fed by one writer).
    pub fn expect<T: Any + Send + Sync>(&self) -> &T {
        match self.get::<T>() {
            Some(v) => v,
            None => panic!(
                "event {:?} holds {} but {} was expected",
                self.id,
                self.type_name,
                std::any::type_name::<T>()
            ),
        }
    }
}

impl fmt::Debug for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Event").field("id", &self.id).field("type", &self.type_name).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downcast_recovers_payload() {
        let ev = Event::new(vec![1u32, 2, 3]);
        assert!(ev.is::<Vec<u32>>());
        assert_eq!(ev.get::<Vec<u32>>().unwrap(), &vec![1, 2, 3]);
        assert!(ev.get::<String>().is_none());
    }

    #[test]
    fn clone_shares_payload() {
        let ev = Event::new("hello".to_string());
        let ev2 = ev.clone();
        assert_eq!(ev.id(), ev2.id());
        let a: *const String = ev.expect::<String>();
        let b: *const String = ev2.expect::<String>();
        assert_eq!(a, b, "clone must not copy the payload");
    }

    #[test]
    fn ids_are_unique() {
        let a = Event::new(1u8);
        let b = Event::new(1u8);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    #[should_panic(expected = "was expected")]
    fn expect_panics_on_wrong_type() {
        let ev = Event::new(42u64);
        let _ = ev.expect::<String>();
    }
}
