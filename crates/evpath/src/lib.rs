//! # evpath — event-overlay middleware
//!
//! A reimplementation of the EVPath event library's core model, which the
//! paper uses for all monitoring and control messaging: processing vertices
//! called *stones* are wired into overlays, events carry dynamically-typed
//! payloads between them, and bridge stones connect overlays across process
//! (here: thread) boundaries.
//!
//! Each [`Overlay`] runs a dedicated dispatch thread that owns the stone
//! graph, so handlers need no synchronization and per-producer ordering is
//! preserved — the property the container control protocols rely on.
//!
//! ## Example
//! ```
//! use evpath::{Action, Event, Overlay};
//! use std::sync::{Arc, Mutex};
//!
//! let ov = Overlay::new("pipeline");
//! let seen = Arc::new(Mutex::new(Vec::new()));
//! let s = seen.clone();
//! let sink = ov.add_stone(Action::Terminal(Box::new(move |ev: Event| {
//!     s.lock().unwrap().push(*ev.expect::<u32>());
//! })));
//! let double = ov.add_stone(Action::Transform {
//!     func: Box::new(|ev| Some(Event::new(ev.expect::<u32>() * 2))),
//!     target: sink,
//! });
//! ov.submit(double, Event::new(21u32));
//! ov.flush();
//! assert_eq!(*seen.lock().unwrap(), vec![42]);
//! ```

#![warn(missing_docs)]

mod event;
mod overlay;
mod stone;

pub use event::{Event, EventId};
pub use overlay::{Overlay, OverlaySender};
pub use stone::{Action, FilterFn, RouterFn, StoneId, TerminalFn, TransformFn};
