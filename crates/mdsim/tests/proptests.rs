//! Property tests of the MD engine's physical and numerical invariants.

use mdsim::{compute_forces, MdConfig, MdEngine, System};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = MdConfig> {
    (2u32..5, 0.01f64..0.3, any::<u64>()).prop_map(|(cells, temp, seed)| MdConfig {
        cells: (cells, cells, cells),
        temperature: temp,
        seed,
        ..MdConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Net momentum stays (numerically) zero under NVE dynamics from any
    /// thermalized start.
    #[test]
    fn momentum_is_conserved(cfg in arb_config(), steps in 1u64..30) {
        let mut md = MdEngine::new(cfg);
        md.run(steps);
        let p = md.system().momentum();
        for (d, pd) in p.iter().enumerate() {
            prop_assert!(pd.abs() < 1e-6, "momentum[{d}] = {pd}");
        }
    }

    /// Newton's third law: forces sum to zero in any configuration the
    /// dynamics can reach.
    #[test]
    fn forces_sum_to_zero(cfg in arb_config(), steps in 0u64..10) {
        let mut md = MdEngine::new(cfg);
        md.run(steps);
        let mut total = [0.0f64; 3];
        for f in &md.system().force {
            for (d, fd) in f.iter().enumerate() {
                total[d] += fd;
            }
        }
        for (d, t) in total.iter().enumerate() {
            prop_assert!(t.abs() < 1e-6, "sum force[{d}] = {t}");
        }
    }

    /// Parallel force evaluation is bit-identical to serial for any state.
    #[test]
    fn parallel_forces_bitwise_match(cfg in arb_config(), threads in 2usize..6) {
        let mut serial = System::fcc(&cfg);
        let mut parallel = serial.clone();
        compute_forces(&mut serial, cfg.cutoff, 1);
        compute_forces(&mut parallel, cfg.cutoff, threads);
        prop_assert_eq!(serial.force, parallel.force);
    }

    /// Checkpoint/restore continues the exact trajectory from any point.
    #[test]
    fn checkpoint_is_transparent(cfg in arb_config(), before in 1u64..15, after in 1u64..15) {
        let mut a = MdEngine::new(cfg.clone());
        a.run(before);
        let ck = a.checkpoint();
        let mut b = MdEngine::restore(cfg, &ck).expect("restore");
        a.run(after);
        b.run(after);
        prop_assert_eq!(&a.system().pos, &b.system().pos);
        prop_assert_eq!(&a.system().vel, &b.system().vel);
    }

    /// Positions stay inside the periodic box after any number of steps.
    #[test]
    fn positions_stay_wrapped(cfg in arb_config(), steps in 1u64..25) {
        let mut md = MdEngine::new(cfg);
        md.run(steps);
        let sys = md.system();
        for p in &sys.pos {
            for (d, pd) in p.iter().enumerate() {
                prop_assert!(
                    *pd >= 0.0 && *pd < sys.box_len[d],
                    "coordinate {d} out of box: {pd} not in [0, {})",
                    sys.box_len[d]
                );
            }
        }
    }

    /// The Table II weak-scaling accounting is linear and exact at the
    /// published points.
    #[test]
    fn output_accounting_is_linear(nodes in 1u32..5000) {
        let atoms = mdsim::atoms_for_nodes(nodes);
        prop_assert_eq!(mdsim::output_bytes(atoms), atoms * mdsim::OUTPUT_BYTES_PER_ATOM);
        if let Some(&(_, exact)) = mdsim::TABLE2.iter().find(|&&(n, _)| n == nodes) {
            prop_assert_eq!(atoms, exact);
        }
    }
}
