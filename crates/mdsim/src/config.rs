//! Simulation configuration and the paper's weak-scaling presets.

use sim_core::SimDuration;

/// Output accounting used by the paper's Table II: 8 bytes per atom per
/// output step (the staged per-atom field). With this constant the table's
/// node→size rows reproduce exactly (in MiB).
pub const OUTPUT_BYTES_PER_ATOM: u64 = 8;

/// The paper's Table II rows: (simulation nodes, atoms, output bytes/step).
pub const TABLE2: [(u32, u64); 3] =
    [(256, 8_819_989), (512, 17_639_979), (1024, 35_279_958)];

/// Atoms simulated for a given simulation-node count, following the paper's
/// weak-scaling setup (≈34,453 atoms per node). The three Table II
/// configurations return the paper's exact atom counts.
pub fn atoms_for_nodes(nodes: u32) -> u64 {
    for &(n, atoms) in &TABLE2 {
        if n == nodes {
            return atoms;
        }
    }
    nodes as u64 * 34_453
}

/// Output bytes per step for a given atom count (Table II accounting).
pub fn output_bytes(atoms: u64) -> u64 {
    atoms * OUTPUT_BYTES_PER_ATOM
}

/// Full configuration of a molecular-dynamics run.
#[derive(Clone, Debug)]
pub struct MdConfig {
    /// FCC unit cells per dimension.
    pub cells: (u32, u32, u32),
    /// Lattice constant in reduced (LJ) units.
    pub lattice_constant: f64,
    /// Integration timestep in reduced units.
    pub dt: f64,
    /// Lennard-Jones interaction cutoff in reduced units.
    pub cutoff: f64,
    /// Initial temperature in reduced units.
    pub temperature: f64,
    /// RNG seed for velocity initialization.
    pub seed: u64,
    /// Uniaxial strain applied per MD step (pulls the box along x).
    pub strain_per_step: f64,
    /// Strain at which the notch fails and a crack opens.
    pub yield_strain: f64,
    /// Worker threads for force evaluation (1 = serial).
    pub threads: usize,
    /// Virtual wall-clock cost per MD step per atom, used when the run is
    /// embedded in the discrete-event experiments.
    pub sim_cost_per_atom_step: SimDuration,
}

impl Default for MdConfig {
    fn default() -> Self {
        MdConfig {
            cells: (6, 6, 6),
            lattice_constant: 1.5874, // FCC equilibrium spacing for LJ solids
            dt: 0.002,
            cutoff: 2.5,
            temperature: 0.1,
            seed: 20130520,
            strain_per_step: 0.0,
            yield_strain: 0.08,
            threads: 1,
            sim_cost_per_atom_step: SimDuration::from_nanos(150),
        }
    }
}

impl MdConfig {
    /// A small, fast configuration for tests (≈864 atoms).
    pub fn small() -> Self {
        MdConfig::default()
    }

    /// A fracture scenario: strained crystal that cracks once the strain
    /// passes the yield point.
    pub fn fracture() -> Self {
        MdConfig { strain_per_step: 0.002, ..MdConfig::default() }
    }

    /// Number of atoms this configuration produces (4 per FCC cell).
    pub fn atom_count(&self) -> usize {
        4 * (self.cells.0 as usize) * (self.cells.1 as usize) * (self.cells.2 as usize)
    }

    /// Box lengths before strain.
    pub fn box_lengths(&self) -> [f64; 3] {
        [
            self.cells.0 as f64 * self.lattice_constant,
            self.cells.1 as f64 * self.lattice_constant,
            self.cells.2 as f64 * self.lattice_constant,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rows_reproduce_exactly() {
        // 67 MiB, 134.6 MiB, 269.2 MiB within rounding.
        let expect_mib = [67.0, 134.6, 269.2];
        for (&(nodes, atoms), &mib) in TABLE2.iter().zip(&expect_mib) {
            assert_eq!(atoms_for_nodes(nodes), atoms);
            let size_mib = output_bytes(atoms) as f64 / (1024.0 * 1024.0);
            assert!((size_mib - mib).abs() < 0.5, "{nodes} nodes: {size_mib} MiB vs {mib}");
        }
    }

    #[test]
    fn weak_scaling_interpolates() {
        assert_eq!(atoms_for_nodes(100), 3_445_300);
    }

    #[test]
    fn atom_count_is_four_per_cell() {
        let cfg = MdConfig { cells: (2, 3, 4), ..MdConfig::default() };
        assert_eq!(cfg.atom_count(), 4 * 24);
    }

    #[test]
    fn box_scales_with_cells() {
        let cfg = MdConfig { cells: (2, 2, 2), lattice_constant: 2.0, ..MdConfig::default() };
        assert_eq!(cfg.box_lengths(), [4.0, 4.0, 4.0]);
    }
}
