//! Particle state: positions, velocities, forces, and the periodic box.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::MdConfig;

/// The full dynamic state of the particle system.
#[derive(Clone, Debug)]
pub struct System {
    /// Atom identifiers (stable across the run).
    pub ids: Vec<u64>,
    /// Positions.
    pub pos: Vec<[f64; 3]>,
    /// Velocities.
    pub vel: Vec<[f64; 3]>,
    /// Forces from the last evaluation.
    pub force: Vec<[f64; 3]>,
    /// Periodic box lengths.
    pub box_len: [f64; 3],
}

impl System {
    /// Builds an FCC crystal filling the configured box, with
    /// Maxwell-distributed velocities at the configured temperature and the
    /// centre-of-mass drift removed.
    pub fn fcc(cfg: &MdConfig) -> System {
        let (nx, ny, nz) = cfg.cells;
        let a = cfg.lattice_constant;
        // The four basis sites of the conventional FCC cell.
        const BASIS: [[f64; 3]; 4] =
            [[0.0, 0.0, 0.0], [0.5, 0.5, 0.0], [0.5, 0.0, 0.5], [0.0, 0.5, 0.5]];
        let n = cfg.atom_count();
        let mut pos = Vec::with_capacity(n);
        for ix in 0..nx {
            for iy in 0..ny {
                for iz in 0..nz {
                    for b in BASIS {
                        pos.push([
                            (ix as f64 + b[0]) * a,
                            (iy as f64 + b[1]) * a,
                            (iz as f64 + b[2]) * a,
                        ]);
                    }
                }
            }
        }

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut vel: Vec<[f64; 3]> = (0..n)
            .map(|_| {
                // Sum of uniforms approximates a Gaussian well enough for
                // thermalization; the thermostat rescales exactly below.
                let mut comp = || -> f64 {
                    (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0
                };
                [comp(), comp(), comp()]
            })
            .collect();

        // Remove net momentum.
        let mut com = [0.0; 3];
        for v in &vel {
            for d in 0..3 {
                com[d] += v[d];
            }
        }
        for v in &mut vel {
            for d in 0..3 {
                v[d] -= com[d] / n as f64;
            }
        }

        let mut sys = System {
            ids: (0..n as u64).collect(),
            pos,
            vel,
            force: vec![[0.0; 3]; n],
            box_len: cfg.box_lengths(),
        };
        sys.rescale_temperature(cfg.temperature);
        sys
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// True for an empty system.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Minimum-image displacement from atom `j` to atom `i`.
    #[inline]
    pub fn min_image(&self, i: [f64; 3], j: [f64; 3]) -> [f64; 3] {
        let mut d = [i[0] - j[0], i[1] - j[1], i[2] - j[2]];
        for (k, dk) in d.iter_mut().enumerate() {
            let l = self.box_len[k];
            if *dk > 0.5 * l {
                *dk -= l;
            } else if *dk < -0.5 * l {
                *dk += l;
            }
        }
        d
    }

    /// Wraps all positions back into the primary box.
    pub fn wrap(&mut self) {
        for p in &mut self.pos {
            for (k, pk) in p.iter_mut().enumerate() {
                let l = self.box_len[k];
                *pk -= l * (*pk / l).floor();
            }
        }
    }

    /// Kinetic energy (unit masses).
    pub fn kinetic_energy(&self) -> f64 {
        0.5 * self
            .vel
            .iter()
            .map(|v| v[0] * v[0] + v[1] * v[1] + v[2] * v[2])
            .sum::<f64>()
    }

    /// Instantaneous temperature in reduced units (3N degrees of freedom).
    pub fn temperature(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        2.0 * self.kinetic_energy() / (3.0 * self.len() as f64)
    }

    /// Rescales velocities to the target temperature (simple thermostat).
    pub fn rescale_temperature(&mut self, target: f64) {
        let current = self.temperature();
        if current <= 0.0 {
            return;
        }
        let s = (target / current).sqrt();
        for v in &mut self.vel {
            for vd in v.iter_mut() {
                *vd *= s;
            }
        }
    }

    /// Net momentum (should stay ~0 under NVE dynamics).
    pub fn momentum(&self) -> [f64; 3] {
        let mut p = [0.0; 3];
        for v in &self.vel {
            for d in 0..3 {
                p[d] += v[d];
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcc_produces_expected_count() {
        let cfg = MdConfig { cells: (3, 3, 3), ..MdConfig::default() };
        let sys = System::fcc(&cfg);
        assert_eq!(sys.len(), 108);
        assert_eq!(sys.ids.len(), 108);
    }

    #[test]
    fn initial_temperature_matches_config() {
        let cfg = MdConfig { temperature: 0.25, ..MdConfig::default() };
        let sys = System::fcc(&cfg);
        assert!((sys.temperature() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn momentum_is_zeroed() {
        let sys = System::fcc(&MdConfig::default());
        let p = sys.momentum();
        for (d, pd) in p.iter().enumerate() {
            assert!(pd.abs() < 1e-9, "net momentum along {d}: {pd}");
        }
    }

    #[test]
    fn min_image_respects_periodicity() {
        let mut sys = System::fcc(&MdConfig::default());
        sys.box_len = [10.0, 10.0, 10.0];
        let d = sys.min_image([9.5, 0.0, 0.0], [0.5, 0.0, 0.0]);
        assert!((d[0] - -1.0).abs() < 1e-12, "wrapped distance, got {}", d[0]);
    }

    #[test]
    fn wrap_brings_positions_into_box() {
        let mut sys = System::fcc(&MdConfig::default());
        sys.box_len = [5.0, 5.0, 5.0];
        sys.pos[0] = [-0.5, 5.5, 12.0];
        sys.wrap();
        let p = sys.pos[0];
        for (k, pk) in p.iter().enumerate() {
            assert!((0.0..5.0).contains(pk), "coordinate {k} = {pk}");
        }
        assert!((p[0] - 4.5).abs() < 1e-12);
    }

    #[test]
    fn same_seed_same_velocities() {
        let a = System::fcc(&MdConfig::default());
        let b = System::fcc(&MdConfig::default());
        assert_eq!(a.vel, b.vel);
    }
}
