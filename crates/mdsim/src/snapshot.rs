//! Output snapshots: the per-step data handed to the analytics pipeline.

use std::sync::Arc;

use crate::config::OUTPUT_BYTES_PER_ATOM;
use crate::system::System;

/// An immutable snapshot of one output step. Payloads are `Arc`-shared so
/// fan-out through the analytics pipeline never copies atom data.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Output-step index.
    pub step: u64,
    /// MD step at which the snapshot was taken.
    pub md_step: u64,
    /// Periodic box lengths at snapshot time.
    pub box_len: [f64; 3],
    /// Atom ids.
    pub ids: Arc<Vec<u64>>,
    /// Atom positions (f32 is what production dumps use).
    pub pos: Arc<Vec<[f32; 3]>>,
    /// Accumulated strain at snapshot time.
    pub strain: f64,
}

impl Snapshot {
    /// Captures the current state of `sys`.
    pub fn capture(sys: &System, step: u64, md_step: u64, strain: f64) -> Snapshot {
        Snapshot {
            step,
            md_step,
            box_len: sys.box_len,
            ids: Arc::new(sys.ids.clone()),
            pos: Arc::new(
                sys.pos.iter().map(|p| [p[0] as f32, p[1] as f32, p[2] as f32]).collect(),
            ),
            strain,
        }
    }

    /// Number of atoms in the snapshot.
    pub fn atom_count(&self) -> usize {
        self.pos.len()
    }

    /// Staged output size under the paper's Table II accounting.
    pub fn staged_bytes(&self) -> u64 {
        self.atom_count() as u64 * OUTPUT_BYTES_PER_ATOM
    }

    /// Minimum-image displacement between two atoms of this snapshot.
    #[inline]
    pub fn min_image(&self, i: usize, j: usize) -> [f64; 3] {
        let (a, b) = (self.pos[i], self.pos[j]);
        let mut d =
            [a[0] as f64 - b[0] as f64, a[1] as f64 - b[1] as f64, a[2] as f64 - b[2] as f64];
        for (k, dk) in d.iter_mut().enumerate() {
            let l = self.box_len[k];
            if *dk > 0.5 * l {
                *dk -= l;
            } else if *dk < -0.5 * l {
                *dk += l;
            }
        }
        d
    }

    /// Squared minimum-image distance between two atoms.
    #[inline]
    pub fn dist2(&self, i: usize, j: usize) -> f64 {
        let d = self.min_image(i, j);
        d[0] * d[0] + d[1] * d[1] + d[2] * d[2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MdConfig;

    #[test]
    fn capture_preserves_counts_and_sizes() {
        let cfg = MdConfig::default();
        let sys = System::fcc(&cfg);
        let snap = Snapshot::capture(&sys, 3, 4500, 0.01);
        assert_eq!(snap.atom_count(), cfg.atom_count());
        assert_eq!(snap.staged_bytes(), cfg.atom_count() as u64 * 8);
        assert_eq!(snap.step, 3);
        assert_eq!(snap.md_step, 4500);
    }

    #[test]
    fn clone_is_shallow() {
        let sys = System::fcc(&MdConfig::default());
        let a = Snapshot::capture(&sys, 0, 0, 0.0);
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.pos, &b.pos));
    }

    #[test]
    fn dist2_matches_system_min_image() {
        let sys = System::fcc(&MdConfig::default());
        let snap = Snapshot::capture(&sys, 0, 0, 0.0);
        let d_sys = sys.min_image(sys.pos[0], sys.pos[7]);
        let want = d_sys[0] * d_sys[0] + d_sys[1] * d_sys[1] + d_sys[2] * d_sys[2];
        assert!((snap.dist2(0, 7) - want).abs() < 1e-6);
    }
}
