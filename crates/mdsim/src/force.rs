//! Lennard-Jones forces via a cell list, with optional thread parallelism.
//!
//! The evaluation is written half-neighbor-free: every atom scans its own
//! neighborhood and accumulates its own force. That doubles the pair math
//! but makes the parallel version embarrassingly simple (threads own
//! disjoint force slices, no reduction needed) and bit-deterministic
//! regardless of thread count — each atom's accumulation order is fixed.

use crate::system::System;

/// A uniform-grid cell list over the periodic box.
pub struct CellList {
    dims: [usize; 3],
    cells: Vec<Vec<u32>>,
}

impl CellList {
    /// Builds a cell list with cells no smaller than `cutoff`.
    pub fn build(sys: &System, cutoff: f64) -> CellList {
        let mut dims = [1usize; 3];
        for (k, dim) in dims.iter_mut().enumerate() {
            *dim = ((sys.box_len[k] / cutoff).floor() as usize).max(1);
        }
        let n_cells = dims[0] * dims[1] * dims[2];
        let mut cells: Vec<Vec<u32>> = vec![Vec::new(); n_cells];
        for (i, p) in sys.pos.iter().enumerate() {
            let c = Self::cell_of(p, sys.box_len, dims);
            cells[c].push(i as u32);
        }
        CellList { dims, cells }
    }

    fn cell_of(p: &[f64; 3], box_len: [f64; 3], dims: [usize; 3]) -> usize {
        let mut ix = [0usize; 3];
        for k in 0..3 {
            // Positions are wrapped, but guard the boundary case p == L.
            let f = (p[k] / box_len[k]).clamp(0.0, 1.0 - 1e-12);
            ix[k] = (f * dims[k] as f64) as usize;
        }
        (ix[2] * dims[1] + ix[1]) * dims[0] + ix[0]
    }

    /// Invokes `f` for every atom in the 27-cell neighborhood of the cell
    /// containing `p` (including the atom itself; callers skip `i == j`).
    pub fn for_neighbors(&self, p: &[f64; 3], box_len: [f64; 3], mut f: impl FnMut(u32)) {
        let dims = self.dims;
        let mut ix = [0usize; 3];
        for k in 0..3 {
            let fk = (p[k] / box_len[k]).clamp(0.0, 1.0 - 1e-12);
            ix[k] = (fk * dims[k] as f64) as usize;
        }
        // When a dimension has <3 cells the 27-stencil would visit the same
        // cell twice; dedupe by iterating unique wrapped indices.
        let offsets = [-1isize, 0, 1];
        let mut seen = [usize::MAX; 27];
        let mut seen_n = 0;
        for &dz in &offsets {
            for &dy in &offsets {
                for &dx in &offsets {
                    let cx = (ix[0] as isize + dx).rem_euclid(dims[0] as isize) as usize;
                    let cy = (ix[1] as isize + dy).rem_euclid(dims[1] as isize) as usize;
                    let cz = (ix[2] as isize + dz).rem_euclid(dims[2] as isize) as usize;
                    let c = (cz * dims[1] + cy) * dims[0] + cx;
                    if seen[..seen_n].contains(&c) {
                        continue;
                    }
                    seen[seen_n] = c;
                    seen_n += 1;
                    for &j in &self.cells[c] {
                        f(j);
                    }
                }
            }
        }
    }
}

/// Result of one force evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ForceStats {
    /// Total potential energy.
    pub potential: f64,
    /// Number of interacting pairs found (i<j, within cutoff).
    pub pairs: u64,
}

#[inline]
fn lj_pair(r2: f64) -> (f64, f64) {
    // V(r) = 4 (r^-12 - r^-6); returns (scalar force / r, unshifted energy).
    let inv_r2 = 1.0 / r2;
    let inv_r6 = inv_r2 * inv_r2 * inv_r2;
    let inv_r12 = inv_r6 * inv_r6;
    let f_over_r = 24.0 * (2.0 * inv_r12 - inv_r6) * inv_r2;
    let e = 4.0 * (inv_r12 - inv_r6);
    (f_over_r, e)
}

/// Energy shift making the truncated potential continuous at the cutoff
/// (truncated-and-shifted LJ); without it, pairs crossing the cutoff inject
/// energy and NVE conservation degrades.
#[inline]
fn lj_shift(cutoff2: f64) -> f64 {
    let inv_r2 = 1.0 / cutoff2;
    let inv_r6 = inv_r2 * inv_r2 * inv_r2;
    4.0 * (inv_r6 * inv_r6 - inv_r6)
}

fn compute_range(
    sys: &System,
    cells: &CellList,
    cutoff2: f64,
    range: std::ops::Range<usize>,
    forces: &mut [[f64; 3]],
) -> ForceStats {
    let mut stats = ForceStats::default();
    let e_shift = lj_shift(cutoff2);
    for i in range.clone() {
        let pi = sys.pos[i];
        let mut fi = [0.0f64; 3];
        cells.for_neighbors(&pi, sys.box_len, |j| {
            let j = j as usize;
            if j == i {
                return;
            }
            let d = sys.min_image(pi, sys.pos[j]);
            let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
            if r2 < cutoff2 && r2 > 1e-12 {
                let (f_over_r, e) = lj_pair(r2);
                for k in 0..3 {
                    fi[k] += f_over_r * d[k];
                }
                // Each pair is visited from both sides; count energy halves.
                stats.potential += 0.5 * (e - e_shift);
                if j > i {
                    stats.pairs += 1;
                }
            }
        });
        forces[i - range.start] = fi;
    }
    stats
}

/// Evaluates LJ forces for the whole system, writing into `sys.force` and
/// returning aggregate statistics. `threads == 1` runs serially; larger
/// values split atoms across simpar's scoped chunks. The filled force
/// buffer is bit-identical for any thread count (each atom accumulates in
/// a fixed order into a slice its chunk owns); the aggregate potential is
/// a float sum over per-chunk partials, identical in value to well below
/// test tolerance.
pub fn compute_forces(sys: &mut System, cutoff: f64, threads: usize) -> ForceStats {
    let n = sys.len();
    if n == 0 {
        return ForceStats::default();
    }
    let cells = CellList::build(sys, cutoff);
    let cutoff2 = cutoff * cutoff;

    let mut forces = std::mem::take(&mut sys.force);
    let sys_ref: &System = sys;
    let cells_ref = &cells;
    let partials = simpar::map_slices(&mut forces, threads, |range, slice| {
        compute_range(sys_ref, cells_ref, cutoff2, range, slice)
    });
    sys.force = forces;
    let mut stats = ForceStats::default();
    for p in partials {
        stats.potential += p.potential;
        stats.pairs += p.pairs;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MdConfig;

    #[test]
    fn two_atoms_at_minimum_feel_no_force() {
        let cfg = MdConfig::default();
        let mut sys = System::fcc(&cfg);
        // Replace with exactly two atoms at the LJ minimum r = 2^(1/6).
        let r0 = 2f64.powf(1.0 / 6.0);
        sys.pos = vec![[5.0, 5.0, 5.0], [5.0 + r0, 5.0, 5.0]];
        sys.vel = vec![[0.0; 3]; 2];
        sys.force = vec![[0.0; 3]; 2];
        sys.ids = vec![0, 1];
        sys.box_len = [20.0, 20.0, 20.0];
        let stats = compute_forces(&mut sys, 2.5, 1);
        assert!(sys.force[0][0].abs() < 1e-9, "force at minimum: {}", sys.force[0][0]);
        // Truncated-and-shifted well depth: -1 minus the shift at the cutoff.
        let expected = -1.0 - lj_shift(2.5 * 2.5);
        assert!((stats.potential - expected).abs() < 1e-9, "well depth: {}", stats.potential);
        assert_eq!(stats.pairs, 1);
    }

    #[test]
    fn forces_are_newton_symmetric() {
        let cfg = MdConfig::default();
        let mut sys = System::fcc(&cfg);
        sys.pos = vec![[5.0, 5.0, 5.0], [6.0, 5.0, 5.0]];
        sys.vel = vec![[0.0; 3]; 2];
        sys.force = vec![[0.0; 3]; 2];
        sys.ids = vec![0, 1];
        sys.box_len = [20.0, 20.0, 20.0];
        compute_forces(&mut sys, 2.5, 1);
        for k in 0..3 {
            assert!((sys.force[0][k] + sys.force[1][k]).abs() < 1e-9);
        }
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let cfg = MdConfig { cells: (4, 4, 4), ..MdConfig::default() };
        let mut serial = System::fcc(&cfg);
        let mut parallel = serial.clone();
        let s1 = compute_forces(&mut serial, cfg.cutoff, 1);
        let s4 = compute_forces(&mut parallel, cfg.cutoff, 4);
        assert_eq!(serial.force, parallel.force);
        assert_eq!(s1.pairs, s4.pairs);
        assert!((s1.potential - s4.potential).abs() < 1e-9);
    }

    #[test]
    fn cell_list_finds_all_pairs_of_brute_force() {
        let cfg = MdConfig { cells: (3, 3, 3), ..MdConfig::default() };
        let mut sys = System::fcc(&cfg);
        let cutoff = cfg.cutoff;
        let stats = compute_forces(&mut sys, cutoff, 1);
        // Brute-force pair count.
        let mut brute = 0u64;
        for i in 0..sys.len() {
            for j in (i + 1)..sys.len() {
                let d = sys.min_image(sys.pos[i], sys.pos[j]);
                let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                if r2 < cutoff * cutoff && r2 > 1e-12 {
                    brute += 1;
                }
            }
        }
        assert_eq!(stats.pairs, brute);
    }

    #[test]
    fn crystal_at_rest_has_negative_potential() {
        let mut sys = System::fcc(&MdConfig::default());
        let stats = compute_forces(&mut sys, 2.5, 1);
        assert!(stats.potential < 0.0, "bound crystal should be below zero energy");
    }
}
