//! # mdsim — LAMMPS-class molecular-dynamics workload
//!
//! The paper drives its I/O pipeline with the LAMMPS molecular-dynamics
//! code simulating a strained solid that develops a crack. This crate is
//! the equivalent workload generator: a real Lennard-Jones FCC crystal
//! integrated with velocity Verlet ([`MdEngine`]), cell-list forces with
//! optional thread parallelism ([`force`]), applied uniaxial strain with
//! crack nucleation at yield, periodic output snapshots ([`Snapshot`])
//! sized per the paper's Table II accounting, and bit-exact checkpointing.
//!
//! ## Example
//! ```
//! use mdsim::{MdConfig, MdEngine};
//!
//! let mut md = MdEngine::new(MdConfig::fracture());
//! let snap = md.run_epoch(10); // 10 MD steps, then an output snapshot
//! assert_eq!(snap.atom_count(), md.config().atom_count());
//! assert!(snap.staged_bytes() > 0);
//! ```

#![warn(missing_docs)]

pub mod config;
mod engine;
pub mod force;
mod snapshot;
mod system;

pub use config::{atoms_for_nodes, output_bytes, MdConfig, OUTPUT_BYTES_PER_ATOM, TABLE2};
pub use engine::MdEngine;
pub use force::{compute_forces, CellList, ForceStats};
pub use snapshot::Snapshot;
pub use system::System;
