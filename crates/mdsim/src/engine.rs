//! The MD engine: velocity-Verlet integration, applied strain, and crack
//! nucleation.
//!
//! The fracture scenario mirrors the paper's LAMMPS use case: a crystal is
//! pulled along x; once the accumulated strain passes the yield point the
//! sample fails across a plane, opening a gap wider than the interaction
//! cutoff. Downstream, the SmartPointer Bonds/CSym components detect the
//! event purely from the data — the "dynamic response to the data itself"
//! the container runtime manages around.

use crate::config::MdConfig;
use crate::force::{compute_forces, ForceStats};
use crate::snapshot::Snapshot;
use crate::system::System;

/// The crack gap opened at failure, in units of the interaction cutoff.
/// Anything > 1 guarantees bonds across the plane are broken.
const CRACK_GAP_CUTOFFS: f64 = 1.6;

/// A running molecular-dynamics simulation.
pub struct MdEngine {
    cfg: MdConfig,
    sys: System,
    md_step: u64,
    outputs: u64,
    strain: f64,
    cracked: bool,
    last_stats: ForceStats,
}

impl MdEngine {
    /// Initializes the crystal and evaluates initial forces.
    pub fn new(cfg: MdConfig) -> MdEngine {
        let mut sys = System::fcc(&cfg);
        let last_stats = compute_forces(&mut sys, cfg.cutoff, cfg.threads);
        MdEngine { cfg, sys, md_step: 0, outputs: 0, strain: 0.0, cracked: false, last_stats }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MdConfig {
        &self.cfg
    }

    /// Read access to the particle state.
    pub fn system(&self) -> &System {
        &self.sys
    }

    /// MD steps taken so far.
    pub fn md_step(&self) -> u64 {
        self.md_step
    }

    /// Accumulated strain.
    pub fn strain(&self) -> f64 {
        self.strain
    }

    /// True once the sample has failed.
    pub fn cracked(&self) -> bool {
        self.cracked
    }

    /// Statistics from the most recent force evaluation.
    pub fn force_stats(&self) -> ForceStats {
        self.last_stats
    }

    /// Total energy (kinetic + potential) from the last evaluation.
    pub fn total_energy(&self) -> f64 {
        self.sys.kinetic_energy() + self.last_stats.potential
    }

    /// Advances one velocity-Verlet step, applying strain if configured.
    pub fn step(&mut self) {
        let dt = self.cfg.dt;
        let n = self.sys.len();

        // Half kick + drift.
        for i in 0..n {
            for k in 0..3 {
                self.sys.vel[i][k] += 0.5 * dt * self.sys.force[i][k];
                self.sys.pos[i][k] += dt * self.sys.vel[i][k];
            }
        }

        if self.cfg.strain_per_step > 0.0 {
            self.apply_strain();
        }
        self.sys.wrap();

        // New forces + second half kick.
        self.last_stats = compute_forces(&mut self.sys, self.cfg.cutoff, self.cfg.threads);
        for i in 0..n {
            for k in 0..3 {
                self.sys.vel[i][k] += 0.5 * dt * self.sys.force[i][k];
            }
        }
        self.md_step += 1;
    }

    /// Advances `n` steps.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Affinely stretches the box along x; nucleates the crack at yield.
    fn apply_strain(&mut self) {
        let eps = self.cfg.strain_per_step;
        self.strain += eps;
        let scale = 1.0 + eps;
        self.sys.box_len[0] *= scale;
        for p in &mut self.sys.pos {
            p[0] *= scale;
        }
        if !self.cracked && self.strain >= self.cfg.yield_strain {
            self.nucleate_crack();
        }
    }

    /// Opens a planar gap at x = L/2: every atom beyond the plane shifts by
    /// a gap wider than the cutoff, and the box grows to hold it, so all
    /// bonds across the plane are geometrically broken.
    fn nucleate_crack(&mut self) {
        let gap = CRACK_GAP_CUTOFFS * self.cfg.cutoff;
        let plane = 0.5 * self.sys.box_len[0];
        for p in &mut self.sys.pos {
            if p[0] > plane {
                p[0] += gap;
            }
        }
        // Grow the box by two gaps so the periodic image across x also
        // separates (otherwise atoms near x=0 and x=L would still bond).
        self.sys.box_len[0] += 2.0 * gap;
        self.cracked = true;
    }

    /// Runs one output epoch of `steps_per_epoch` MD steps and captures the
    /// resulting snapshot (LAMMPS's "dump every N steps").
    pub fn run_epoch(&mut self, steps_per_epoch: u64) -> Snapshot {
        self.run(steps_per_epoch);
        let snap = Snapshot::capture(&self.sys, self.outputs, self.md_step, self.strain);
        self.outputs += 1;
        snap
    }

    /// Serializes the full dynamic state (checkpoint).
    pub fn checkpoint(&self) -> Vec<u8> {
        let n = self.sys.len();
        let mut out = Vec::with_capacity(32 + n * (8 + 48));
        out.extend_from_slice(b"MDCK");
        out.extend_from_slice(&(n as u64).to_le_bytes());
        out.extend_from_slice(&self.md_step.to_le_bytes());
        out.extend_from_slice(&self.outputs.to_le_bytes());
        out.extend_from_slice(&self.strain.to_le_bytes());
        out.push(self.cracked as u8);
        for k in 0..3 {
            out.extend_from_slice(&self.sys.box_len[k].to_le_bytes());
        }
        for i in 0..n {
            out.extend_from_slice(&self.sys.ids[i].to_le_bytes());
            for k in 0..3 {
                out.extend_from_slice(&self.sys.pos[i][k].to_le_bytes());
            }
            for k in 0..3 {
                out.extend_from_slice(&self.sys.vel[i][k].to_le_bytes());
            }
        }
        out
    }

    /// Restores a run from a checkpoint produced by [`MdEngine::checkpoint`]
    /// with the same configuration. Returns `None` on a malformed blob.
    pub fn restore(cfg: MdConfig, blob: &[u8]) -> Option<MdEngine> {
        let mut at = 0usize;
        let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
            let s = blob.get(*at..*at + n)?;
            *at += n;
            Some(s)
        };
        let f64_at = |at: &mut usize| -> Option<f64> {
            Some(f64::from_le_bytes(take(at, 8)?.try_into().ok()?))
        };
        let u64_at = |at: &mut usize| -> Option<u64> {
            Some(u64::from_le_bytes(take(at, 8)?.try_into().ok()?))
        };

        if take(&mut at, 4)? != b"MDCK" {
            return None;
        }
        let n = u64_at(&mut at)? as usize;
        let md_step = u64_at(&mut at)?;
        let outputs = u64_at(&mut at)?;
        let strain = f64_at(&mut at)?;
        let cracked = take(&mut at, 1)?[0] != 0;
        let mut box_len = [0.0; 3];
        for b in &mut box_len {
            *b = f64_at(&mut at)?;
        }
        let mut ids = Vec::with_capacity(n);
        let mut pos = Vec::with_capacity(n);
        let mut vel = Vec::with_capacity(n);
        for _ in 0..n {
            ids.push(u64_at(&mut at)?);
            let mut p = [0.0; 3];
            for x in &mut p {
                *x = f64_at(&mut at)?;
            }
            let mut v = [0.0; 3];
            for x in &mut v {
                *x = f64_at(&mut at)?;
            }
            pos.push(p);
            vel.push(v);
        }
        if at != blob.len() {
            return None;
        }
        let mut sys = System { ids, pos, vel, force: vec![[0.0; 3]; n], box_len };
        let last_stats = compute_forces(&mut sys, cfg.cutoff, cfg.threads);
        Some(MdEngine { cfg, sys, md_step, outputs, strain, cracked, last_stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nve_energy_is_conserved() {
        let cfg = MdConfig { temperature: 0.05, ..MdConfig::default() };
        let mut md = MdEngine::new(cfg);
        let e0 = md.total_energy();
        md.run(200);
        let e1 = md.total_energy();
        let drift = ((e1 - e0) / e0).abs();
        assert!(drift < 1e-3, "energy drift {drift} over 200 steps (e0={e0}, e1={e1})");
    }

    #[test]
    fn strain_grows_box_and_eventually_cracks() {
        let cfg = MdConfig { strain_per_step: 0.005, yield_strain: 0.05, ..MdConfig::default() };
        let l0 = cfg.box_lengths()[0];
        let mut md = MdEngine::new(cfg);
        assert!(!md.cracked());
        md.run(20); // 10% strain > 5% yield
        assert!(md.cracked());
        assert!(md.system().box_len[0] > l0 * 1.05);
    }

    #[test]
    fn crack_opens_gap_wider_than_cutoff() {
        let cfg = MdConfig { strain_per_step: 0.005, yield_strain: 0.02, ..MdConfig::default() };
        let cutoff = cfg.cutoff;
        let mut md = MdEngine::new(cfg);
        md.run(10);
        assert!(md.cracked());
        // No pair should straddle the crack plane within the cutoff:
        // verify a gap exists by checking the sorted x-coordinates have a
        // jump larger than the cutoff somewhere.
        let mut xs: Vec<f64> = md.system().pos.iter().map(|p| p[0]).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let max_jump =
            xs.windows(2).map(|w| w[1] - w[0]).fold(0.0f64, f64::max);
        assert!(max_jump > cutoff, "largest x-gap {max_jump} <= cutoff {cutoff}");
    }

    #[test]
    fn epochs_number_snapshots_sequentially() {
        let mut md = MdEngine::new(MdConfig::default());
        let s0 = md.run_epoch(5);
        let s1 = md.run_epoch(5);
        assert_eq!(s0.step, 0);
        assert_eq!(s1.step, 1);
        assert_eq!(s1.md_step, 10);
    }

    #[test]
    fn checkpoint_restore_is_bit_exact() {
        let cfg = MdConfig::default();
        let mut md = MdEngine::new(cfg.clone());
        md.run(17);
        let ck = md.checkpoint();
        let restored = MdEngine::restore(cfg.clone(), &ck).expect("valid checkpoint");
        assert_eq!(restored.md_step(), 17);
        assert_eq!(restored.system().pos, md.system().pos);
        assert_eq!(restored.system().vel, md.system().vel);

        // Both trajectories must continue identically.
        let mut a = md;
        let mut b = restored;
        a.run(5);
        b.run(5);
        assert_eq!(a.system().pos, b.system().pos);
    }

    #[test]
    fn corrupt_checkpoint_rejected() {
        let cfg = MdConfig::default();
        let md = MdEngine::new(cfg.clone());
        let mut ck = md.checkpoint();
        ck.truncate(ck.len() - 3);
        assert!(MdEngine::restore(cfg.clone(), &ck).is_none());
        let mut bad_magic = md.checkpoint();
        bad_magic[0] = b'X';
        assert!(MdEngine::restore(cfg, &bad_magic).is_none());
    }

    #[test]
    fn deterministic_across_engines() {
        let cfg = MdConfig::default();
        let mut a = MdEngine::new(cfg.clone());
        let mut b = MdEngine::new(cfg);
        a.run(25);
        b.run(25);
        assert_eq!(a.system().pos, b.system().pos);
    }
}
