//! Executes a D2T transaction over the simulated interconnect.
//!
//! Drives the pure state machines of [`crate::group`] with real (simulated)
//! message exchanges. Each group's participants form a dissemination tree
//! rooted at its sub-coordinator: prepares and decisions flow down the
//! tree, votes and acks are *aggregated* up the tree (the mechanism that
//! gives D2T its scalability — the sub-coordinator never funnels one
//! message per participant through its NIC). The transaction-completion
//! time this produces is the quantity of the paper's Fig. 6.

// BTreeMap (not HashMap) so tree iteration order is deterministic.
use std::collections::{BTreeMap, BTreeSet};
use sim_core::{shared, Shared, Sim, SimDuration, SimTime};
use simnet::{Net, Network, NodeId};

use crate::group::{Aggregate, Decision, RootState, Vote};

/// How a sub-coordinator disseminates to (and aggregates from) its group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BroadcastShape {
    /// Star topology: the sub-coordinator talks to every participant
    /// directly (serializes at its NIC; the naive baseline).
    Flat,
    /// K-ary tree: participants forward down and aggregate up.
    Tree {
        /// Children per node.
        fanout: usize,
    },
}

/// Configuration of one transaction.
#[derive(Clone, Debug)]
pub struct TxnConfig {
    /// Writer-group size (e.g. 512 simulation cores).
    pub writers: u32,
    /// Reader-group size (e.g. 4 staging cores).
    pub readers: u32,
    /// Dissemination/aggregation shape within each group.
    pub broadcast: BroadcastShape,
    /// Local prepare work each participant performs before voting.
    pub work_time: SimDuration,
    /// Sub-coordinator vote timeout; missing votes abort the group.
    pub vote_timeout: SimDuration,
    /// Root timeout: if a sub-coordinator never reports (e.g. it died),
    /// the root aborts the transaction rather than blocking forever.
    pub root_timeout: SimDuration,
}

impl Default for TxnConfig {
    fn default() -> Self {
        TxnConfig {
            writers: 512,
            readers: 4,
            broadcast: BroadcastShape::Tree { fanout: 8 },
            work_time: SimDuration::from_micros(50),
            vote_timeout: SimDuration::from_millis(250),
            root_timeout: SimDuration::from_millis(600),
        }
    }
}

/// Injected failures.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Writers whose vote is lost (never sent; the group aborts at timeout).
    pub drop_writer_votes: BTreeSet<u32>,
    /// Writers that explicitly vote no.
    pub writer_no_votes: BTreeSet<u32>,
    /// Readers whose vote is lost.
    pub drop_reader_votes: BTreeSet<u32>,
    /// Readers that explicitly vote no.
    pub reader_no_votes: BTreeSet<u32>,
    /// Kill the writer group's sub-coordinator: its verdict never reaches
    /// the root, which must abort at its own timeout rather than hang.
    pub kill_writer_subcoord: bool,
}

impl FaultPlan {
    /// True when no faults are injected.
    pub fn is_clean(&self) -> bool {
        self.drop_writer_votes.is_empty()
            && self.writer_no_votes.is_empty()
            && self.drop_reader_votes.is_empty()
            && self.reader_no_votes.is_empty()
            && !self.kill_writer_subcoord
    }
}

/// Result of a completed transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxnReport {
    /// Commit or abort.
    pub decision: Decision,
    /// Time from begin until the root holds all acks (or times out).
    pub duration: SimDuration,
    /// Total control messages exchanged.
    pub messages: u64,
    /// True when the root aborted because a sub-coordinator never
    /// reported (coordinator-level failure handling).
    pub timed_out: bool,
}

/// A dissemination tree over a group, rooted at the sub-coordinator.
#[derive(Clone, Debug)]
struct TreeTopo {
    root: NodeId,
    children: BTreeMap<NodeId, Vec<NodeId>>,
    size: u32,
}

impl TreeTopo {
    fn build(members: &[NodeId], shape: BroadcastShape) -> TreeTopo {
        let root = members[0];
        let mut children: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        match shape {
            BroadcastShape::Flat => {
                children.insert(root, members[1..].to_vec());
            }
            BroadcastShape::Tree { fanout } => {
                fn assign(
                    parent: NodeId,
                    rest: &[NodeId],
                    fanout: usize,
                    children: &mut BTreeMap<NodeId, Vec<NodeId>>,
                ) {
                    if rest.is_empty() {
                        return;
                    }
                    let k = rest.len().div_ceil(fanout).max(1);
                    for chunk in rest.chunks(k) {
                        let head = chunk[0];
                        children.entry(parent).or_default().push(head);
                        assign(head, &chunk[1..], fanout, children);
                    }
                }
                assign(root, &members[1..], fanout.max(2), &mut children);
            }
        }
        TreeTopo { root, children, size: members.len() as u32 }
    }

    fn children_of(&self, n: NodeId) -> &[NodeId] {
        self.children.get(&n).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Participants in the subtree rooted at `n`, including `n`.
    fn subtree_size(&self, n: NodeId) -> u32 {
        1 + self.children_of(n).iter().map(|&c| self.subtree_size(c)).sum::<u32>()
    }
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
enum Phase {
    Prepare,
    Ack,
}

/// Per-node aggregation state for one phase of one group.
struct NodeAgg {
    expected: u32, // own contribution + full child subtrees
    agg: Aggregate,
    sent: bool,
}

struct GroupRt {
    topo: TreeTopo,
    agg: BTreeMap<(Phase, NodeId), NodeAgg>,
    verdict_sent: bool,
    acked: bool,
}

struct Runtime {
    root_node: NodeId,
    groups: Vec<GroupRt>,
    root: RootState,
    decision: Option<Decision>,
    started: SimTime,
    report: Option<TxnReport>,
    msgs_at_start: u64,
}

/// Node layout: writers first, then readers, then the root coordinator.
fn layout(cfg: &TxnConfig) -> (Vec<NodeId>, Vec<NodeId>, NodeId) {
    let writers: Vec<NodeId> = (0..cfg.writers).map(NodeId).collect();
    let readers: Vec<NodeId> = (cfg.writers..cfg.writers + cfg.readers).map(NodeId).collect();
    let root = NodeId(cfg.writers + cfg.readers);
    (writers, readers, root)
}

/// Runs one transaction to completion inside `sim`, returning its report.
///
/// # Panics
/// Panics if either group is empty.
pub fn run_transaction(
    sim: &mut Sim,
    net: &Net,
    cfg: &TxnConfig,
    faults: &FaultPlan,
) -> TxnReport {
    assert!(cfg.writers > 0 && cfg.readers > 0, "both groups must be non-empty");
    let (writers, readers, root_node) = layout(cfg);

    let mk_group = |members: &[NodeId]| GroupRt {
        topo: TreeTopo::build(members, cfg.broadcast),
        agg: BTreeMap::new(),
        verdict_sent: false,
        acked: false,
    };
    let rt = shared(Runtime {
        root_node,
        groups: vec![mk_group(&writers), mk_group(&readers)],
        root: RootState::new(2),
        decision: None,
        started: sim.now(),
        report: None,
        msgs_at_start: net.borrow().stats().messages,
    });

    // Root failure detection: if any sub-coordinator never reports, the
    // transaction aborts at the root timeout instead of hanging.
    {
        let rt2 = rt.clone();
        let net2 = net.clone();
        sim.schedule_in_named("d2t.root_timeout", cfg.root_timeout, move |sim| {
            let mut r = rt2.borrow_mut();
            if r.report.is_none() && r.decision.is_none() {
                r.decision = Some(Decision::Abort);
                let duration = sim.now().since(r.started);
                let messages = net2.borrow().stats().messages - r.msgs_at_start;
                r.report =
                    Some(TxnReport { decision: Decision::Abort, duration, messages, timed_out: true });
            }
        });
    }

    // Phase 1: root -> sub-coordinators; prepare flows down each tree.
    for gix in 0..2 {
        let sub = rt.borrow().groups[gix].topo.root;
        let net2 = net.clone();
        let rt2 = rt.clone();
        let cfg2 = cfg.clone();
        let faults2 = faults.clone();
        let killed = gix == 0 && faults.kill_writer_subcoord;
        Network::send_control(net, sim, root_node, sub, move |sim| {
            if killed {
                // The sub-coordinator crashed on receipt: no prepares go
                // out, no verdict ever comes back.
                return;
            }
            // Arm the group's vote timeout.
            {
                let net3 = net2.clone();
                let rt3 = rt2.clone();
                sim.schedule_in_named("d2t.vote_timeout", cfg2.vote_timeout, move |sim| {
                    send_verdict_if_needed(sim, &net3, &rt3, gix, true);
                });
            }
            prepare_at(sim, &net2, &rt2, &cfg2, &faults2, gix, sub);
        });
    }

    sim.run();
    let report = rt.borrow().report.expect("transaction must terminate");
    report
}

/// Fault lookup: (vote is dropped, vote is an explicit no).
fn fault_of(faults: &FaultPlan, gix: usize, pid: u32) -> (bool, bool) {
    if gix == 0 {
        (faults.drop_writer_votes.contains(&pid), faults.writer_no_votes.contains(&pid))
    } else {
        (faults.drop_reader_votes.contains(&pid), faults.reader_no_votes.contains(&pid))
    }
}

/// Handles Prepare arriving at `node`: forward to children, do local work,
/// contribute the local vote, and pass the aggregate up when complete.
fn prepare_at(
    sim: &mut Sim,
    net: &Net,
    rt: &Shared<Runtime>,
    cfg: &TxnConfig,
    faults: &FaultPlan,
    gix: usize,
    node: NodeId,
) {
    let (children, expected, base) = {
        let r = rt.borrow();
        let topo = &r.groups[gix].topo;
        (topo.children_of(node).to_vec(), topo.subtree_size(node), group_base(&r, gix))
    };
    rt.borrow_mut().groups[gix]
        .agg
        .insert((Phase::Prepare, node), NodeAgg { expected, agg: Aggregate::default(), sent: false });

    // Forward down the tree.
    for &child in &children {
        let net2 = net.clone();
        let rt2 = rt.clone();
        let cfg2 = cfg.clone();
        let faults2 = faults.clone();
        Network::send_control(net, sim, node, child, move |sim| {
            prepare_at(sim, &net2, &rt2, &cfg2, &faults2, gix, child);
        });
    }

    // Local prepare work, then contribute the local vote.
    let pid = node.0 - base;
    let (dropped, votes_no) = fault_of(faults, gix, pid);
    if dropped {
        return; // this subtree never completes; the timeout aborts the group
    }
    let vote = if votes_no { Vote::No } else { Vote::Yes };
    let net2 = net.clone();
    let rt2 = rt.clone();
    sim.schedule_in_named("d2t.work_done", cfg.work_time, move |sim| {
        contribute(sim, &net2, &rt2, gix, Phase::Prepare, node, Aggregate::from_vote(vote));
    });
}

fn group_base(r: &Runtime, gix: usize) -> u32 {
    // Writers start at node 0; readers start right after the writers.
    if gix == 0 {
        0
    } else {
        r.groups[0].topo.size
    }
}

/// Folds `contribution` into `node`'s phase aggregate; when the subtree is
/// complete, sends the aggregate to the parent (or completes the phase at
/// the sub-coordinator).
fn contribute(
    sim: &mut Sim,
    net: &Net,
    rt: &Shared<Runtime>,
    gix: usize,
    phase: Phase,
    node: NodeId,
    contribution: Aggregate,
) {
    let (complete, parent_opt, agg) = {
        let mut r = rt.borrow_mut();
        let g = &mut r.groups[gix];
        let entry = g.agg.get_mut(&(phase, node)).expect("aggregation state installed");
        entry.agg.merge(contribution);
        if entry.sent || entry.agg.count < entry.expected {
            return;
        }
        entry.sent = true;
        let agg = entry.agg;
        let is_root = node == g.topo.root;
        let parent = if is_root { None } else { Some(parent_of(&g.topo, node)) };
        (is_root, parent, agg)
    };

    if complete {
        match phase {
            Phase::Prepare => send_verdict_if_needed(sim, net, rt, gix, false),
            Phase::Ack => send_group_ack(sim, net, rt, gix),
        }
    } else if let Some(parent) = parent_opt {
        let net2 = net.clone();
        let rt2 = rt.clone();
        Network::send_control(net, sim, node, parent, move |sim| {
            contribute(sim, &net2, &rt2, gix, phase, parent, agg);
        });
    }
}

fn parent_of(topo: &TreeTopo, node: NodeId) -> NodeId {
    for (&p, kids) in &topo.children {
        if kids.contains(&node) {
            return p;
        }
    }
    unreachable!("non-root node {node} must have a parent")
}

/// Sends the group verdict to the root coordinator exactly once.
fn send_verdict_if_needed(sim: &mut Sim, net: &Net, rt: &Shared<Runtime>, gix: usize, timeout: bool) {
    let (sub, root_node, verdict) = {
        let mut r = rt.borrow_mut();
        let g = &mut r.groups[gix];
        if g.verdict_sent {
            return;
        }
        let root = g.topo.root;
        let expected = g.topo.size;
        let agg =
            g.agg.get(&(Phase::Prepare, root)).map(|e| e.agg).unwrap_or_default();
        if !timeout && agg.count < expected {
            return;
        }
        g.verdict_sent = true;
        (root, r.root_node, agg.verdict(expected))
    };
    let net2 = net.clone();
    let rt2 = rt.clone();
    Network::send_control(net, sim, sub, root_node, move |sim| {
        on_verdict(sim, &net2, &rt2, verdict);
    });
}

/// Root coordinator: collect verdicts, decide, push the decision down.
fn on_verdict(sim: &mut Sim, net: &Net, rt: &Shared<Runtime>, verdict: Vote) {
    let decision = {
        let mut r = rt.borrow_mut();
        r.root.record(verdict);
        match r.root.decision() {
            Some(d) if r.decision.is_none() => {
                r.decision = Some(d);
                Some(d)
            }
            _ => None,
        }
    };
    let Some(_decision) = decision else { return };

    for gix in 0..2 {
        let (root_node, sub) = {
            let r = rt.borrow();
            (r.root_node, r.groups[gix].topo.root)
        };
        let net2 = net.clone();
        let rt2 = rt.clone();
        Network::send_control(net, sim, root_node, sub, move |sim| {
            decide_at(sim, &net2, &rt2, gix, sub);
        });
    }
}

/// Decision arriving at `node`: forward down, apply locally, ack up.
fn decide_at(sim: &mut Sim, net: &Net, rt: &Shared<Runtime>, gix: usize, node: NodeId) {
    let (children, expected) = {
        let r = rt.borrow();
        let topo = &r.groups[gix].topo;
        (topo.children_of(node).to_vec(), topo.subtree_size(node))
    };
    rt.borrow_mut().groups[gix]
        .agg
        .insert((Phase::Ack, node), NodeAgg { expected, agg: Aggregate::default(), sent: false });

    for &child in &children {
        let net2 = net.clone();
        let rt2 = rt.clone();
        Network::send_control(net, sim, node, child, move |sim| {
            decide_at(sim, &net2, &rt2, gix, child);
        });
    }

    // Applying the decision is local and immediate; contribute the ack.
    contribute(sim, net, rt, gix, Phase::Ack, node, Aggregate::from_vote(Vote::Yes));
}

/// A group finished acking; when both have, the transaction completes.
fn send_group_ack(sim: &mut Sim, net: &Net, rt: &Shared<Runtime>, gix: usize) {
    let (sub, root_node) = {
        let r = rt.borrow();
        (r.groups[gix].topo.root, r.root_node)
    };
    let rt2 = rt.clone();
    let net2 = net.clone();
    Network::send_control(net, sim, sub, root_node, move |sim| {
        let mut r = rt2.borrow_mut();
        r.groups[gix].acked = true;
        if r.report.is_none() && r.groups.iter().all(|g| g.acked) {
            let duration = sim.now().since(r.started);
            let messages = net2.borrow().stats().messages - r.msgs_at_start;
            r.report = Some(TxnReport {
                decision: r.decision.expect("decision precedes acks"),
                duration,
                messages,
                timed_out: false,
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::NetworkConfig;

    fn run(cfg: &TxnConfig, faults: &FaultPlan) -> TxnReport {
        let mut sim = Sim::new(7);
        let net = Network::new(NetworkConfig::qdr_torus((16, 16, 16)));
        run_transaction(&mut sim, &net, cfg, faults)
    }

    #[test]
    fn clean_transaction_commits() {
        let r = run(&TxnConfig::default(), &FaultPlan::default());
        assert_eq!(r.decision, Decision::Commit);
        assert!(r.duration > SimDuration::ZERO);
        // Prepare down + votes up + decision down + acks up: ≥4 tree edges
        // per participant minus shared paths; at minimum 4 msgs per member
        // along the tree.
        assert!(r.messages as u32 >= 4 * (512 + 4 - 2));
    }

    #[test]
    fn explicit_no_vote_aborts() {
        let mut faults = FaultPlan::default();
        faults.writer_no_votes.insert(17);
        let r = run(&TxnConfig::default(), &faults);
        assert_eq!(r.decision, Decision::Abort);
    }

    #[test]
    fn dropped_vote_aborts_via_timeout() {
        let mut faults = FaultPlan::default();
        faults.drop_reader_votes.insert(0);
        let cfg = TxnConfig::default();
        let r = run(&cfg, &faults);
        assert_eq!(r.decision, Decision::Abort);
        // The abort could not be decided before the vote timeout fired.
        assert!(r.duration >= cfg.vote_timeout);
    }

    #[test]
    fn dropped_vote_deep_in_tree_also_aborts() {
        let mut faults = FaultPlan::default();
        faults.drop_writer_votes.insert(300); // interior/leaf of the tree
        let r = run(&TxnConfig::default(), &faults);
        assert_eq!(r.decision, Decision::Abort);
    }

    #[test]
    fn duration_grows_slowly_with_writer_count() {
        let small = run(&TxnConfig { writers: 64, ..TxnConfig::default() }, &FaultPlan::default());
        let large =
            run(&TxnConfig { writers: 2048, ..TxnConfig::default() }, &FaultPlan::default());
        assert!(large.duration > small.duration);
        // "Good scalability": 32x writers must cost much less than 32x time.
        let ratio = large.duration / small.duration;
        assert!(ratio < 8.0, "scaling ratio {ratio}");
    }

    #[test]
    fn tree_broadcast_beats_flat_at_scale() {
        let base = TxnConfig { writers: 1024, ..TxnConfig::default() };
        let tree = run(
            &TxnConfig { broadcast: BroadcastShape::Tree { fanout: 8 }, ..base.clone() },
            &FaultPlan::default(),
        );
        let flat =
            run(&TxnConfig { broadcast: BroadcastShape::Flat, ..base }, &FaultPlan::default());
        assert!(
            tree.duration < flat.duration,
            "tree {} should beat flat {}",
            tree.duration,
            flat.duration
        );
    }

    #[test]
    fn flat_and_tree_agree_on_outcome() {
        for shape in [BroadcastShape::Flat, BroadcastShape::Tree { fanout: 4 }] {
            let cfg = TxnConfig { writers: 32, readers: 2, broadcast: shape, ..TxnConfig::default() };
            assert_eq!(run(&cfg, &FaultPlan::default()).decision, Decision::Commit);
            let mut faults = FaultPlan::default();
            faults.writer_no_votes.insert(5);
            assert_eq!(run(&cfg, &faults).decision, Decision::Abort);
        }
    }

    #[test]
    fn dead_subcoordinator_aborts_at_root_timeout() {
        let faults = FaultPlan { kill_writer_subcoord: true, ..FaultPlan::default() };
        let cfg = TxnConfig::default();
        let r = run(&cfg, &faults);
        assert_eq!(r.decision, Decision::Abort);
        assert!(r.timed_out, "abort must come from the root timeout path");
        assert!(r.duration >= cfg.root_timeout);
    }

    #[test]
    fn clean_runs_do_not_time_out() {
        let r = run(&TxnConfig::default(), &FaultPlan::default());
        assert!(!r.timed_out);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(&TxnConfig::default(), &FaultPlan::default());
        let b = run(&TxnConfig::default(), &FaultPlan::default());
        assert_eq!(a, b);
    }
}
