//! # d2t — doubly-distributed transactions
//!
//! A reimplementation of the D2T protocol (Lofstead et al.) the paper uses
//! to make container control operations resilient: two *groups* of
//! processes — e.g. the writers of one application and the readers of
//! another — each coordinate under a sub-coordinator, and a root
//! coordinator commits only when both groups vote unanimously. Resource
//! trades between containers ride on this so a node is never "removed from
//! the donor but never added to the recipient" under failure.
//!
//! * [`group`](VoteCollector) — the pure, idempotent vote/ack state
//!   machines (unit- and property-tested in isolation);
//! * [`run_transaction`] — drives them over the simulated interconnect,
//!   producing the transaction-completion times of the paper's Fig. 6,
//!   with fault injection ([`FaultPlan`]) for lost and negative votes.
//!
//! ## Example
//! ```
//! use d2t::{run_transaction, Decision, FaultPlan, TxnConfig};
//! use sim_core::Sim;
//! use simnet::{Network, NetworkConfig};
//!
//! let mut sim = Sim::new(1);
//! let net = Network::new(NetworkConfig::qdr_torus((16, 16, 16)));
//! let cfg = TxnConfig { writers: 128, readers: 4, ..TxnConfig::default() };
//! let report = run_transaction(&mut sim, &net, &cfg, &FaultPlan::default());
//! assert_eq!(report.decision, Decision::Commit);
//! ```

#![warn(missing_docs)]

mod group;
mod simrun;

pub use group::{AckCollector, Aggregate, Decision, RootState, Vote, VoteCollector};
pub use simrun::{run_transaction, BroadcastShape, FaultPlan, TxnConfig, TxnReport};
