//! Pure vote/ack bookkeeping for one participant group.
//!
//! D2T (doubly-distributed transactions) coordinates two *groups* of
//! processes — the writers of one application and the readers of another —
//! each under its own sub-coordinator, with a root coordinator above them.
//! This module is the sub-coordinator's pure state machine: collect votes,
//! detect completion, aggregate a group verdict, then collect acks. All
//! transitions are idempotent so duplicated or reordered messages cannot
//! corrupt the outcome.

use std::collections::BTreeSet;

/// A participant's vote on the prepare phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Vote {
    /// Ready to commit.
    Yes,
    /// Must abort.
    No,
}

/// The coordinator's final decision.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Decision {
    /// All groups voted yes.
    Commit,
    /// Some participant voted no or timed out.
    Abort,
}

/// Vote collection state for one group of `size` participants.
#[derive(Clone, Debug)]
pub struct VoteCollector {
    size: usize,
    yes: BTreeSet<u32>,
    no: BTreeSet<u32>,
}

impl VoteCollector {
    /// Starts collecting for a group of `size` participants.
    pub fn new(size: usize) -> VoteCollector {
        VoteCollector { size, yes: BTreeSet::new(), no: BTreeSet::new() }
    }

    /// Records a vote. Re-votes are ignored (first vote wins), making the
    /// collector idempotent under message duplication.
    pub fn record(&mut self, participant: u32, vote: Vote) {
        if self.yes.contains(&participant) || self.no.contains(&participant) {
            return;
        }
        match vote {
            Vote::Yes => self.yes.insert(participant),
            Vote::No => self.no.insert(participant),
        };
    }

    /// Number of votes received.
    pub fn received(&self) -> usize {
        self.yes.len() + self.no.len()
    }

    /// True once every participant has voted.
    pub fn complete(&self) -> bool {
        self.received() >= self.size
    }

    /// The group verdict: `Yes` only if *all* participants voted yes.
    /// Called at completion or at timeout (missing votes count as no).
    pub fn verdict(&self) -> Vote {
        if self.no.is_empty() && self.yes.len() >= self.size {
            Vote::Yes
        } else {
            Vote::No
        }
    }

    /// True if any explicit no-vote arrived (early-abort opportunity).
    pub fn any_no(&self) -> bool {
        !self.no.is_empty()
    }
}

/// A partial vote aggregate flowing up a dissemination tree: D2T's
/// scalability comes from combining votes in the tree instead of funnelling
/// every vote through the sub-coordinator's NIC.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Aggregate {
    /// Votes folded into this aggregate.
    pub count: u32,
    /// True if any folded vote was no.
    pub any_no: bool,
}

impl Aggregate {
    /// An aggregate of a single vote.
    pub fn from_vote(v: Vote) -> Aggregate {
        Aggregate { count: 1, any_no: v == Vote::No }
    }

    /// Folds another aggregate in.
    pub fn merge(&mut self, other: Aggregate) {
        self.count += other.count;
        self.any_no |= other.any_no;
    }

    /// The verdict over `expected` participants; missing votes count as no.
    pub fn verdict(&self, expected: u32) -> Vote {
        if !self.any_no && self.count >= expected {
            Vote::Yes
        } else {
            Vote::No
        }
    }
}

/// Ack collection for the decision phase.
#[derive(Clone, Debug)]
pub struct AckCollector {
    size: usize,
    acked: BTreeSet<u32>,
}

impl AckCollector {
    /// Starts collecting acks from `size` participants.
    pub fn new(size: usize) -> AckCollector {
        AckCollector { size, acked: BTreeSet::new() }
    }

    /// Records an ack (idempotent).
    pub fn record(&mut self, participant: u32) {
        self.acked.insert(participant);
    }

    /// True once every participant acked.
    pub fn complete(&self) -> bool {
        self.acked.len() >= self.size
    }

    /// Number of acks received.
    pub fn received(&self) -> usize {
        self.acked.len()
    }
}

/// Root-coordinator aggregation over group verdicts.
#[derive(Clone, Debug)]
pub struct RootState {
    expected_groups: usize,
    verdicts: Vec<Vote>,
}

impl RootState {
    /// Starts a transaction spanning `groups` sub-coordinators.
    pub fn new(groups: usize) -> RootState {
        RootState { expected_groups: groups, verdicts: Vec::with_capacity(groups) }
    }

    /// Records one group verdict.
    pub fn record(&mut self, verdict: Vote) {
        self.verdicts.push(verdict);
    }

    /// The decision once all groups reported; `None` while still waiting.
    pub fn decision(&self) -> Option<Decision> {
        if self.verdicts.len() < self.expected_groups {
            return None;
        }
        Some(if self.verdicts.iter().all(|&v| v == Vote::Yes) {
            Decision::Commit
        } else {
            Decision::Abort
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unanimous_yes_commits() {
        let mut c = VoteCollector::new(3);
        for p in 0..3 {
            c.record(p, Vote::Yes);
        }
        assert!(c.complete());
        assert_eq!(c.verdict(), Vote::Yes);
    }

    #[test]
    fn single_no_aborts_group() {
        let mut c = VoteCollector::new(3);
        c.record(0, Vote::Yes);
        c.record(1, Vote::No);
        c.record(2, Vote::Yes);
        assert_eq!(c.verdict(), Vote::No);
        assert!(c.any_no());
    }

    #[test]
    fn missing_votes_abort_at_timeout() {
        let mut c = VoteCollector::new(4);
        c.record(0, Vote::Yes);
        assert!(!c.complete());
        // Timeout path consults the verdict with votes missing.
        assert_eq!(c.verdict(), Vote::No);
    }

    #[test]
    fn duplicate_votes_are_idempotent() {
        let mut c = VoteCollector::new(2);
        c.record(0, Vote::Yes);
        c.record(0, Vote::No); // duplicate, ignored
        c.record(1, Vote::Yes);
        assert_eq!(c.received(), 2);
        assert_eq!(c.verdict(), Vote::Yes);
    }

    #[test]
    fn acks_complete_exactly_once() {
        let mut a = AckCollector::new(2);
        a.record(0);
        a.record(0);
        assert!(!a.complete());
        a.record(1);
        assert!(a.complete());
        assert_eq!(a.received(), 2);
    }

    #[test]
    fn aggregate_merge_and_verdict() {
        let mut a = Aggregate::from_vote(Vote::Yes);
        a.merge(Aggregate::from_vote(Vote::Yes));
        assert_eq!(a.verdict(2), Vote::Yes);
        assert_eq!(a.verdict(3), Vote::No, "missing votes abort");
        a.merge(Aggregate::from_vote(Vote::No));
        assert_eq!(a.verdict(3), Vote::No);
        assert_eq!(a.count, 3);
        assert!(a.any_no);
    }

    #[test]
    fn root_requires_all_groups() {
        let mut r = RootState::new(2);
        r.record(Vote::Yes);
        assert_eq!(r.decision(), None);
        r.record(Vote::Yes);
        assert_eq!(r.decision(), Some(Decision::Commit));

        let mut r = RootState::new(2);
        r.record(Vote::Yes);
        r.record(Vote::No);
        assert_eq!(r.decision(), Some(Decision::Abort));
    }
}
