//! The discrete-event kernel.
//!
//! A [`Sim`] owns a priority queue of scheduled actions, a virtual clock, and
//! a seeded random-number generator. Execution is strictly deterministic:
//! events at equal timestamps fire in the order they were scheduled, and all
//! randomness flows through the kernel's single seeded RNG.
//!
//! Model state lives in [`Shared`] cells (`Rc<RefCell<_>>`); scheduled
//! closures capture clones of those cells and receive `&mut Sim` so they can
//! read the clock, draw randomness, and schedule follow-up events.

use std::cell::RefCell;
use std::cmp::Ordering;
// BTreeSet (not HashSet) for the cancellation set: the kernel itself must be
// free of unordered collections so no future change can leak iteration order
// into scheduling.
use std::collections::{BTreeSet, BinaryHeap};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::time::{SimDuration, SimTime};
use crate::trace::{mix64, Trace};

/// Shared, interiorly-mutable model state for single-threaded simulation.
pub type Shared<T> = Rc<RefCell<T>>;

/// Wraps a value in a [`Shared`] cell.
pub fn shared<T>(value: T) -> Shared<T> {
    Rc::new(RefCell::new(value))
}

/// Handle for a scheduled event, usable to cancel it before it fires.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

/// How the kernel orders events that share a timestamp.
///
/// FIFO is the documented contract. The other modes exist for the
/// schedule-invariance checker: a model whose observable behaviour is
/// independent of same-timestamp ordering produces the same
/// [`Trace::schedule_hash`] under every mode; a model that secretly relies
/// on tie-break order (a "simulation race") diverges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TieBreak {
    /// Same-timestamp events fire in scheduling order (the default).
    #[default]
    Fifo,
    /// Same-timestamp events fire in reverse scheduling order.
    Lifo,
    /// Same-timestamp events fire in a pseudo-random order derived from the
    /// salt (deterministic for a fixed salt).
    Salted(u64),
}

impl TieBreak {
    /// The intra-timestamp ordering key for insertion number `seq`.
    fn ord_key(self, seq: u64) -> u64 {
        match self {
            TieBreak::Fifo => seq,
            TieBreak::Lifo => !seq,
            // mix64 is bijective, so distinct seqs keep distinct keys and
            // the order stays total and deterministic.
            TieBreak::Salted(salt) => mix64(seq ^ salt),
        }
    }
}

type Action = Box<dyn FnOnce(&mut Sim)>;

/// Passive observer invoked for every executed event (see
/// [`Sim::set_event_hook`]).
pub type EventHook = Box<dyn FnMut(SimTime, &'static str)>;

struct Entry {
    at: SimTime,
    /// Intra-timestamp ordering key, computed from the insertion number by
    /// the active [`TieBreak`] at push time.
    ord_key: u64,
    seq: u64,
    id: EventId,
    label: &'static str,
    action: Action,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.ord_key == other.ord_key
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    // BinaryHeap is a max-heap; invert so the earliest (time, key) pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.ord_key).cmp(&(self.at, self.ord_key))
    }
}

/// Label attached to events scheduled through the unlabeled API.
pub const DEFAULT_EVENT_LABEL: &str = "event";

/// A deterministic discrete-event simulator.
pub struct Sim {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Entry>,
    cancelled: BTreeSet<EventId>,
    rng: StdRng,
    executed: u64,
    tie_break: TieBreak,
    trace: Option<Trace>,
    event_hook: Option<EventHook>,
}

impl Sim {
    /// Creates a simulator whose RNG is seeded with `seed`.
    ///
    /// Two simulators created with the same seed and fed the same schedule of
    /// events produce bit-identical results.
    pub fn new(seed: u64) -> Self {
        Sim::with_tie_break(seed, TieBreak::Fifo)
    }

    /// Creates a simulator with an explicit same-timestamp tie-break mode.
    pub fn with_tie_break(seed: u64, tie_break: TieBreak) -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            cancelled: BTreeSet::new(),
            rng: StdRng::seed_from_u64(seed),
            executed: 0,
            tie_break,
            trace: None,
            event_hook: None,
        }
    }

    /// Starts recording the execution schedule (see [`Trace`]). Call before
    /// running; events executed earlier are not retroactively recorded.
    pub fn record_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Trace::default());
        }
    }

    /// The schedule recorded so far, if [`record_trace`](Sim::record_trace)
    /// was called.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Takes ownership of the recorded schedule, stopping recording.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// The active same-timestamp tie-break mode.
    pub fn tie_break(&self) -> TieBreak {
        self.tie_break
    }

    /// Installs a passive observer called once per executed event with the
    /// event's timestamp and label, after the clock has advanced and before
    /// the event's action runs.
    ///
    /// The hook has no access to the kernel, so it cannot schedule, cancel,
    /// or re-time events — observation is schedule-neutral by construction.
    /// Telemetry layers use this to count events per label.
    pub fn set_event_hook(&mut self, hook: EventHook) {
        self.event_hook = Some(hook);
    }

    /// Removes the observer installed by [`set_event_hook`](Sim::set_event_hook).
    pub fn clear_event_hook(&mut self) {
        self.event_hook = None;
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending (including cancelled tombstones).
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// The kernel's deterministic random-number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Schedules `action` to run at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: SimTime, action: impl FnOnce(&mut Sim) + 'static) -> EventId {
        self.schedule_at_named(DEFAULT_EVENT_LABEL, at, action)
    }

    /// Schedules `action` to run `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut Sim) + 'static,
    ) -> EventId {
        self.schedule_at(self.now + delay, action)
    }

    /// Schedules a labeled event at absolute time `at`. The label names the
    /// event in recorded traces and invariance diagnostics; use stable,
    /// coarse labels (one per event kind, not per instance).
    ///
    /// # Panics
    /// Panics if `at` is in the past.
    pub fn schedule_at_named(
        &mut self,
        label: &'static str,
        at: SimTime,
        action: impl FnOnce(&mut Sim) + 'static,
    ) -> EventId {
        assert!(at >= self.now, "cannot schedule into the past: {at} < {}", self.now);
        let id = EventId(self.seq);
        self.queue.push(Entry {
            at,
            ord_key: self.tie_break.ord_key(self.seq),
            seq: self.seq,
            id,
            label,
            action: Box::new(action),
        });
        self.seq += 1;
        id
    }

    /// Schedules a labeled event `delay` after the current time.
    pub fn schedule_in_named(
        &mut self,
        label: &'static str,
        delay: SimDuration,
        action: impl FnOnce(&mut Sim) + 'static,
    ) -> EventId {
        self.schedule_at_named(label, self.now + delay, action)
    }

    /// Cancels a pending event. Has no effect if the event already fired.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id);
    }

    /// Executes the next pending event, advancing the clock to its timestamp.
    ///
    /// Returns the time of the executed event, or `None` if the queue was
    /// empty (cancelled events are skipped silently).
    pub fn step(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.queue.pop() {
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            debug_assert!(entry.at >= self.now);
            self.now = entry.at;
            self.executed += 1;
            if let Some(trace) = &mut self.trace {
                trace.record(entry.at, entry.label, entry.seq);
            }
            if let Some(hook) = &mut self.event_hook {
                hook(entry.at, entry.label);
            }
            (entry.action)(self);
            return Some(entry.at);
        }
        None
    }

    /// Runs until the event queue drains. Returns the final time.
    pub fn run(&mut self) -> SimTime {
        while self.step().is_some() {}
        self.now
    }

    /// Runs until the queue drains or the next event would fire after
    /// `horizon`. Events at exactly `horizon` are executed. The clock is left
    /// at the later of its current value and `horizon` only if an event
    /// actually advanced it; otherwise it stays at the last executed event.
    pub fn run_until(&mut self, horizon: SimTime) -> SimTime {
        while let Some(entry) = self.queue.peek() {
            if entry.at > horizon {
                break;
            }
            self.step();
        }
        self.now
    }

    /// Runs for at most `budget` more virtual time.
    pub fn run_for(&mut self, budget: SimDuration) -> SimTime {
        let horizon = self.now + budget;
        self.run_until(horizon)
    }

    /// The timestamp of the next pending (non-cancelled) event, if any.
    pub fn peek_next(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.queue.peek() {
            if self.cancelled.contains(&entry.id) {
                // simlint: allow(panic-path, pop directly follows a successful peek of the same queue)
                let entry = self.queue.pop().expect("peeked entry vanished");
                self.cancelled.remove(&entry.id);
                continue;
            }
            return Some(entry.at);
        }
        None
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(0);
        let log = shared(Vec::new());
        for &t in &[30u64, 10, 20] {
            let log = log.clone();
            sim.schedule_at(SimTime::from_secs(t), move |sim| {
                log.borrow_mut().push(sim.now().as_nanos() / 1_000_000_000);
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![10, 20, 30]);
        assert_eq!(sim.now(), SimTime::from_secs(30));
    }

    #[test]
    fn equal_timestamps_fire_fifo() {
        let mut sim = Sim::new(0);
        let log = shared(Vec::new());
        for i in 0..100 {
            let log = log.clone();
            sim.schedule_at(SimTime::from_secs(1), move |_| log.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut sim = Sim::new(0);
        let fired = shared(false);
        let f = fired.clone();
        let id = sim.schedule_in(SimDuration::from_secs(1), move |_| *f.borrow_mut() = true);
        sim.cancel(id);
        sim.run();
        assert!(!*fired.borrow());
        assert_eq!(sim.events_executed(), 0);
    }

    #[test]
    fn nested_scheduling_chains() {
        let mut sim = Sim::new(0);
        let count = shared(0u32);
        fn tick(sim: &mut Sim, count: Shared<u32>) {
            *count.borrow_mut() += 1;
            if *count.borrow() < 5 {
                sim.schedule_in(SimDuration::from_secs(1), move |sim| tick(sim, count));
            }
        }
        let c = count.clone();
        sim.schedule_at(SimTime::ZERO, move |sim| tick(sim, c));
        sim.run();
        assert_eq!(*count.borrow(), 5);
        assert_eq!(sim.now(), SimTime::from_secs(4));
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = Sim::new(0);
        let log = shared(Vec::new());
        for t in 1..=10u64 {
            let log = log.clone();
            sim.schedule_at(SimTime::from_secs(t), move |_| log.borrow_mut().push(t));
        }
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(*log.borrow(), vec![1, 2, 3, 4, 5]);
        sim.run();
        assert_eq!(log.borrow().len(), 10);
    }

    #[test]
    fn determinism_across_runs() {
        fn run_once() -> Vec<u64> {
            use rand::Rng;
            let mut sim = Sim::new(42);
            let out = shared(Vec::new());
            for _ in 0..50 {
                let out = out.clone();
                sim.schedule_in(SimDuration::from_millis(1), move |sim| {
                    let v: u64 = sim.rng().gen();
                    out.borrow_mut().push(v);
                });
            }
            sim.run();
            let v = out.borrow().clone();
            v
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    #[should_panic]
    fn scheduling_into_past_panics() {
        let mut sim = Sim::new(0);
        sim.schedule_at(SimTime::from_secs(10), |_| {});
        sim.run();
        sim.schedule_at(SimTime::from_secs(5), |_| {});
    }

    #[test]
    fn lifo_tie_break_reverses_equal_timestamps() {
        let mut sim = Sim::with_tie_break(0, TieBreak::Lifo);
        let log = shared(Vec::new());
        for i in 0..10 {
            let log = log.clone();
            sim.schedule_at(SimTime::from_secs(1), move |_| log.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..10).rev().collect::<Vec<_>>());
    }

    #[test]
    fn salted_tie_break_is_deterministic_and_permutes() {
        fn order(salt: u64) -> Vec<u32> {
            let mut sim = Sim::with_tie_break(0, TieBreak::Salted(salt));
            let log = shared(Vec::new());
            for i in 0..32u32 {
                let log = log.clone();
                sim.schedule_at(SimTime::from_secs(1), move |_| log.borrow_mut().push(i));
            }
            sim.run();
            let v = log.borrow().clone();
            v
        }
        assert_eq!(order(7), order(7));
        assert_ne!(order(7), (0..32).collect::<Vec<_>>());
        assert_ne!(order(7), order(8));
    }

    #[test]
    fn tie_break_never_violates_time_order() {
        for tb in [TieBreak::Fifo, TieBreak::Lifo, TieBreak::Salted(99)] {
            let mut sim = Sim::with_tie_break(0, tb);
            let log = shared(Vec::new());
            for &t in &[5u64, 1, 3, 3, 1, 5, 2] {
                let log = log.clone();
                sim.schedule_at(SimTime::from_secs(t), move |_| log.borrow_mut().push(t));
            }
            sim.run();
            let log = log.borrow();
            for w in log.windows(2) {
                assert!(w[0] <= w[1], "time order violated under {tb:?}");
            }
        }
    }

    #[test]
    fn trace_hash_is_invariant_for_commutative_events() {
        fn hash(tb: TieBreak) -> u64 {
            let mut sim = Sim::with_tie_break(0, tb);
            sim.record_trace();
            for i in 0..20u64 {
                // Same-timestamp events that do not interact: reordering
                // them must not change the schedule hash.
                sim.schedule_at_named("tick", SimTime::from_secs(i / 4), move |sim| {
                    sim.schedule_in_named("follow", SimDuration::from_millis(10), |_| {});
                });
            }
            sim.run();
            sim.take_trace().expect("trace recorded").schedule_hash()
        }
        let fifo = hash(TieBreak::Fifo);
        assert_eq!(fifo, hash(TieBreak::Lifo));
        assert_eq!(fifo, hash(TieBreak::Salted(1)));
        assert_eq!(fifo, hash(TieBreak::Salted(2)));
    }

    #[test]
    fn trace_hash_catches_order_dependent_events() {
        // A deliberate simulation race: same-timestamp events racing on a
        // shared flag, with the loser scheduling an extra event.
        fn hash(tb: TieBreak) -> u64 {
            let mut sim = Sim::with_tie_break(0, tb);
            sim.record_trace();
            let winner_decided = shared(false);
            for label in ["a", "b"] {
                let w = winner_decided.clone();
                sim.schedule_at_named(label, SimTime::from_secs(1), move |sim| {
                    if !*w.borrow() {
                        *w.borrow_mut() = true;
                    } else {
                        sim.schedule_in_named(
                            if label == "a" { "a.retry" } else { "b.retry" },
                            SimDuration::from_secs(1),
                            |_| {},
                        );
                    }
                });
            }
            sim.run();
            sim.take_trace().expect("trace recorded").schedule_hash()
        }
        assert_ne!(hash(TieBreak::Fifo), hash(TieBreak::Lifo));
    }

    #[test]
    fn peek_next_skips_cancelled() {
        let mut sim = Sim::new(0);
        let id = sim.schedule_at(SimTime::from_secs(1), |_| {});
        sim.schedule_at(SimTime::from_secs(2), |_| {});
        sim.cancel(id);
        assert_eq!(sim.peek_next(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn event_hook_observes_labels_without_changing_the_schedule() {
        fn run(hooked: bool) -> (u64, Vec<(SimTime, &'static str)>) {
            let mut sim = Sim::new(7);
            sim.record_trace();
            let seen = shared(Vec::new());
            if hooked {
                let seen = seen.clone();
                sim.set_event_hook(Box::new(move |at, label| {
                    seen.borrow_mut().push((at, label));
                }));
            }
            let cancelled = sim.schedule_at_named("never", SimTime::from_secs(3), |_| {});
            sim.cancel(cancelled);
            sim.schedule_at_named("b", SimTime::from_secs(2), |_| {});
            sim.schedule_at_named("a", SimTime::from_secs(1), |sim| {
                sim.schedule_in_named("a2", SimDuration::from_secs(5), |_| {});
            });
            sim.run();
            let hash = sim.take_trace().expect("trace recorded").schedule_hash();
            let seen = seen.borrow().clone();
            (hash, seen)
        }
        let (hash_on, seen) = run(true);
        let (hash_off, unobserved) = run(false);
        assert_eq!(hash_on, hash_off, "observation must be schedule-neutral");
        assert!(unobserved.is_empty());
        assert_eq!(
            seen,
            vec![
                (SimTime::from_secs(1), "a"),
                (SimTime::from_secs(2), "b"),
                (SimTime::from_secs(6), "a2"),
            ],
            "hook sees executed events only, cancelled ones never fire"
        );
    }
}
