//! The discrete-event kernel.
//!
//! A [`Sim`] owns a priority queue of scheduled actions, a virtual clock, and
//! a seeded random-number generator. Execution is strictly deterministic:
//! events at equal timestamps fire in the order they were scheduled, and all
//! randomness flows through the kernel's single seeded RNG.
//!
//! Model state lives in [`Shared`] cells (`Rc<RefCell<_>>`); scheduled
//! closures capture clones of those cells and receive `&mut Sim` so they can
//! read the clock, draw randomness, and schedule follow-up events.

use std::cell::RefCell;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};
use crate::trace::{mix64, Trace};

pub use crate::queue::EventId;

/// Shared, interiorly-mutable model state for single-threaded simulation.
pub type Shared<T> = Rc<RefCell<T>>;

/// Wraps a value in a [`Shared`] cell.
pub fn shared<T>(value: T) -> Shared<T> {
    Rc::new(RefCell::new(value))
}

/// How the kernel orders events that share a timestamp.
///
/// FIFO is the documented contract. The other modes exist for the
/// schedule-invariance checker: a model whose observable behaviour is
/// independent of same-timestamp ordering produces the same
/// [`Trace::schedule_hash`] under every mode; a model that secretly relies
/// on tie-break order (a "simulation race") diverges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TieBreak {
    /// Same-timestamp events fire in scheduling order (the default).
    #[default]
    Fifo,
    /// Same-timestamp events fire in reverse scheduling order.
    Lifo,
    /// Same-timestamp events fire in a pseudo-random order derived from the
    /// salt (deterministic for a fixed salt).
    Salted(u64),
}

impl TieBreak {
    /// The intra-timestamp ordering key for insertion number `seq`.
    fn ord_key(self, seq: u64) -> u64 {
        match self {
            TieBreak::Fifo => seq,
            TieBreak::Lifo => !seq,
            // mix64 is bijective, so distinct seqs keep distinct keys and
            // the order stays total and deterministic.
            TieBreak::Salted(salt) => mix64(seq ^ salt),
        }
    }
}

type Action = Box<dyn FnOnce(&mut Sim)>;

/// Passive observer invoked for every executed event (see
/// [`Sim::set_event_hook`]).
pub type EventHook = Box<dyn FnMut(SimTime, &'static str)>;

/// Queue payload: everything the kernel needs when an event fires.
struct Ev {
    /// Global insertion number, recorded in traces.
    seq: u64,
    label: &'static str,
    action: Action,
}

/// Label attached to events scheduled through the unlabeled API.
pub const DEFAULT_EVENT_LABEL: &str = "event";

/// A deterministic discrete-event simulator.
///
/// Events live in an index-mapped four-ary heap over a slab arena (see
/// [`crate::queue`] and DESIGN.md §12): slot reuse is O(1),
/// [`cancel`](Sim::cancel)/[`reschedule_at`](Sim::reschedule_at) are true
/// O(log n) removals, and same-timestamp runs are drained in one batched
/// pass before dispatch.
pub struct Sim {
    now: SimTime,
    seq: u64,
    queue: EventQueue<Ev>,
    rng: StdRng,
    executed: u64,
    tie_break: TieBreak,
    trace: Option<Trace>,
    event_hook: Option<EventHook>,
}

impl Sim {
    /// Creates a simulator whose RNG is seeded with `seed`.
    ///
    /// Two simulators created with the same seed and fed the same schedule of
    /// events produce bit-identical results.
    pub fn new(seed: u64) -> Self {
        Sim::with_tie_break(seed, TieBreak::Fifo)
    }

    /// Creates a simulator with an explicit same-timestamp tie-break mode.
    pub fn with_tie_break(seed: u64, tie_break: TieBreak) -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            queue: EventQueue::new(),
            rng: StdRng::seed_from_u64(seed),
            executed: 0,
            tie_break,
            trace: None,
            event_hook: None,
        }
    }

    /// Starts recording the execution schedule (see [`Trace`]). Call before
    /// running; events executed earlier are not retroactively recorded.
    pub fn record_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Trace::default());
        }
    }

    /// The schedule recorded so far, if [`record_trace`](Sim::record_trace)
    /// was called.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Takes ownership of the recorded schedule, stopping recording.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// The active same-timestamp tie-break mode.
    pub fn tie_break(&self) -> TieBreak {
        self.tie_break
    }

    /// Installs a passive observer called once per executed event with the
    /// event's timestamp and label, after the clock has advanced and before
    /// the event's action runs.
    ///
    /// The hook has no access to the kernel, so it cannot schedule, cancel,
    /// or re-time events — observation is schedule-neutral by construction.
    /// Telemetry layers use this to count events per label.
    pub fn set_event_hook(&mut self, hook: EventHook) {
        self.event_hook = Some(hook);
    }

    /// Removes the observer installed by [`set_event_hook`](Sim::set_event_hook).
    pub fn clear_event_hook(&mut self) {
        self.event_hook = None;
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending.
    ///
    /// Exact: cancelled events leave the queue immediately, so they are
    /// never counted. (Before the indexed queue this included cancelled
    /// tombstones that had not yet reached the head of the heap.)
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Whether `id` refers to an event that is still scheduled (not yet
    /// fired and not cancelled).
    pub fn is_pending(&self, id: EventId) -> bool {
        self.queue.contains(id)
    }

    /// The kernel's deterministic random-number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Schedules `action` to run at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: SimTime, action: impl FnOnce(&mut Sim) + 'static) -> EventId {
        self.schedule_at_named(DEFAULT_EVENT_LABEL, at, action)
    }

    /// Schedules `action` to run `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut Sim) + 'static,
    ) -> EventId {
        self.schedule_at(self.now + delay, action)
    }

    /// Schedules a labeled event at absolute time `at`. The label names the
    /// event in recorded traces and invariance diagnostics; use stable,
    /// coarse labels (one per event kind, not per instance).
    ///
    /// # Panics
    /// Panics if `at` is in the past.
    pub fn schedule_at_named(
        &mut self,
        label: &'static str,
        at: SimTime,
        action: impl FnOnce(&mut Sim) + 'static,
    ) -> EventId {
        assert!(at >= self.now, "cannot schedule into the past: {at} < {}", self.now);
        let key = self.tie_break.ord_key(self.seq);
        // simlint: allow(alloc-in-hot-path, the queue stores heterogeneous closures; one Box per scheduled event is the type-erasure boundary)
        let ev = Ev { seq: self.seq, label, action: Box::new(action) };
        let id = self.queue.insert(at, key, ev);
        self.seq += 1;
        id
    }

    /// Schedules a labeled event `delay` after the current time.
    pub fn schedule_in_named(
        &mut self,
        label: &'static str,
        delay: SimDuration,
        action: impl FnOnce(&mut Sim) + 'static,
    ) -> EventId {
        self.schedule_at_named(label, self.now + delay, action)
    }

    /// Cancels a pending event, removing it from the queue immediately.
    /// Returns `true` if the event was still pending; `false` (and does
    /// nothing) if it already fired, was cancelled, or never existed.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Moves a pending event to absolute time `at`, keeping its
    /// [`EventId`] valid. The event is re-ranked as if it had been freshly
    /// scheduled: it receives a new insertion number, so under FIFO
    /// tie-breaking it fires after events already scheduled at `at`.
    /// Returns `false` (and does nothing) for events that already fired
    /// or were cancelled.
    ///
    /// # Panics
    /// Panics if `at` is in the past.
    pub fn reschedule_at(&mut self, id: EventId, at: SimTime) -> bool {
        assert!(at >= self.now, "cannot reschedule into the past: {at} < {}", self.now);
        let key = self.tie_break.ord_key(self.seq);
        let seq = self.seq;
        match self.queue.reschedule(id, at, key) {
            Some(ev) => {
                ev.seq = seq;
                self.seq += 1;
                true
            }
            None => false,
        }
    }

    /// Moves a pending event to `delay` after the current time (see
    /// [`reschedule_at`](Sim::reschedule_at)).
    pub fn reschedule_in(&mut self, id: EventId, delay: SimDuration) -> bool {
        self.reschedule_at(id, self.now + delay)
    }

    /// Executes the next pending event, advancing the clock to its timestamp.
    ///
    /// Returns the time of the executed event, or `None` if the queue was
    /// empty.
    pub fn step(&mut self) -> Option<SimTime> {
        let (at, ev) = self.queue.pop()?;
        debug_assert!(at >= self.now);
        self.now = at;
        self.executed += 1;
        if let Some(trace) = &mut self.trace {
            trace.record(at, ev.label, ev.seq);
        }
        if let Some(hook) = &mut self.event_hook {
            hook(at, ev.label);
        }
        (ev.action)(self);
        Some(at)
    }

    /// Runs until the event queue drains. Returns the final time.
    pub fn run(&mut self) -> SimTime {
        while self.step().is_some() {}
        self.now
    }

    /// Runs until the queue drains or the next event would fire after
    /// `horizon`. Events at exactly `horizon` are executed. The clock is left
    /// at the later of its current value and `horizon` only if an event
    /// actually advanced it; otherwise it stays at the last executed event.
    pub fn run_until(&mut self, horizon: SimTime) -> SimTime {
        while let Some(at) = self.queue.peek() {
            if at > horizon {
                break;
            }
            self.step();
        }
        self.now
    }

    /// Runs for at most `budget` more virtual time.
    pub fn run_for(&mut self, budget: SimDuration) -> SimTime {
        let horizon = self.now + budget;
        self.run_until(horizon)
    }

    /// The timestamp of the next pending event, if any.
    pub fn peek_next(&mut self) -> Option<SimTime> {
        self.queue.peek()
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

/// The pre-indexed-queue implementation — a `BinaryHeap` of full entries
/// plus a tombstone set consulted on every pop — kept as the reference
/// model for the equivalence proptest below. Cancellation here is lazy
/// (tombstones), and "reschedule" is modelled the only way the old kernel
/// could express it: tombstone the old incarnation, push a new one.
#[cfg(test)]
mod reference {
    use std::cmp::Ordering;
    use std::collections::{BTreeSet, BinaryHeap};

    use crate::time::SimTime;

    struct RefEntry {
        at: SimTime,
        ord_key: u64,
        /// Unique per incarnation (a rescheduled event gets a fresh
        /// token), so tombstones never outlive their target.
        token: u64,
        value: u32,
    }

    impl PartialEq for RefEntry {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.ord_key == other.ord_key
        }
    }
    impl Eq for RefEntry {}
    impl PartialOrd for RefEntry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for RefEntry {
        // Max-heap; invert so the earliest (time, key) pops first.
        fn cmp(&self, other: &Self) -> Ordering {
            (other.at, other.ord_key).cmp(&(self.at, self.ord_key))
        }
    }

    #[derive(Default)]
    pub struct RefQueue {
        heap: BinaryHeap<RefEntry>,
        cancelled: BTreeSet<u64>,
        next_token: u64,
        live: usize,
    }

    impl RefQueue {
        pub fn insert(&mut self, at: SimTime, ord_key: u64, value: u32) -> u64 {
            let token = self.next_token;
            self.next_token += 1;
            self.heap.push(RefEntry { at, ord_key, token, value });
            self.live += 1;
            token
        }

        /// Tombstones `token`; returns whether it was live.
        pub fn cancel(&mut self, token: u64) -> bool {
            if token >= self.next_token || self.cancelled.contains(&token) {
                return false;
            }
            let was_live = self.heap.iter().any(|e| e.token == token);
            if was_live {
                self.cancelled.insert(token);
                self.live -= 1;
            }
            was_live
        }

        /// Old-kernel reschedule: tombstone + re-push. Returns the new
        /// token, or `None` if `token` was no longer live.
        pub fn reschedule(&mut self, token: u64, at: SimTime, ord_key: u64) -> Option<u64> {
            let value = self.heap.iter().find(|e| e.token == token)?.value;
            if !self.cancel(token) {
                return None;
            }
            Some(self.insert(at, ord_key, value))
        }

        pub fn len(&self) -> usize {
            self.live
        }

        pub fn pop(&mut self) -> Option<(SimTime, u32)> {
            while let Some(entry) = self.heap.pop() {
                if self.cancelled.remove(&entry.token) {
                    continue;
                }
                self.live -= 1;
                return Some((entry.at, entry.value));
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(0);
        let log = shared(Vec::new());
        for &t in &[30u64, 10, 20] {
            let log = log.clone();
            sim.schedule_at(SimTime::from_secs(t), move |sim| {
                log.borrow_mut().push(sim.now().as_nanos() / 1_000_000_000);
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![10, 20, 30]);
        assert_eq!(sim.now(), SimTime::from_secs(30));
    }

    #[test]
    fn equal_timestamps_fire_fifo() {
        let mut sim = Sim::new(0);
        let log = shared(Vec::new());
        for i in 0..100 {
            let log = log.clone();
            sim.schedule_at(SimTime::from_secs(1), move |_| log.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut sim = Sim::new(0);
        let fired = shared(false);
        let f = fired.clone();
        let id = sim.schedule_in(SimDuration::from_secs(1), move |_| *f.borrow_mut() = true);
        sim.cancel(id);
        sim.run();
        assert!(!*fired.borrow());
        assert_eq!(sim.events_executed(), 0);
    }

    #[test]
    fn nested_scheduling_chains() {
        let mut sim = Sim::new(0);
        let count = shared(0u32);
        fn tick(sim: &mut Sim, count: Shared<u32>) {
            *count.borrow_mut() += 1;
            if *count.borrow() < 5 {
                sim.schedule_in(SimDuration::from_secs(1), move |sim| tick(sim, count));
            }
        }
        let c = count.clone();
        sim.schedule_at(SimTime::ZERO, move |sim| tick(sim, c));
        sim.run();
        assert_eq!(*count.borrow(), 5);
        assert_eq!(sim.now(), SimTime::from_secs(4));
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = Sim::new(0);
        let log = shared(Vec::new());
        for t in 1..=10u64 {
            let log = log.clone();
            sim.schedule_at(SimTime::from_secs(t), move |_| log.borrow_mut().push(t));
        }
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(*log.borrow(), vec![1, 2, 3, 4, 5]);
        sim.run();
        assert_eq!(log.borrow().len(), 10);
    }

    #[test]
    fn determinism_across_runs() {
        fn run_once() -> Vec<u64> {
            use rand::Rng;
            let mut sim = Sim::new(42);
            let out = shared(Vec::new());
            for _ in 0..50 {
                let out = out.clone();
                sim.schedule_in(SimDuration::from_millis(1), move |sim| {
                    let v: u64 = sim.rng().gen();
                    out.borrow_mut().push(v);
                });
            }
            sim.run();
            let v = out.borrow().clone();
            v
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    #[should_panic]
    fn scheduling_into_past_panics() {
        let mut sim = Sim::new(0);
        sim.schedule_at(SimTime::from_secs(10), |_| {});
        sim.run();
        sim.schedule_at(SimTime::from_secs(5), |_| {});
    }

    #[test]
    fn lifo_tie_break_reverses_equal_timestamps() {
        let mut sim = Sim::with_tie_break(0, TieBreak::Lifo);
        let log = shared(Vec::new());
        for i in 0..10 {
            let log = log.clone();
            sim.schedule_at(SimTime::from_secs(1), move |_| log.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..10).rev().collect::<Vec<_>>());
    }

    #[test]
    fn salted_tie_break_is_deterministic_and_permutes() {
        fn order(salt: u64) -> Vec<u32> {
            let mut sim = Sim::with_tie_break(0, TieBreak::Salted(salt));
            let log = shared(Vec::new());
            for i in 0..32u32 {
                let log = log.clone();
                sim.schedule_at(SimTime::from_secs(1), move |_| log.borrow_mut().push(i));
            }
            sim.run();
            let v = log.borrow().clone();
            v
        }
        assert_eq!(order(7), order(7));
        assert_ne!(order(7), (0..32).collect::<Vec<_>>());
        assert_ne!(order(7), order(8));
    }

    #[test]
    fn tie_break_never_violates_time_order() {
        for tb in [TieBreak::Fifo, TieBreak::Lifo, TieBreak::Salted(99)] {
            let mut sim = Sim::with_tie_break(0, tb);
            let log = shared(Vec::new());
            for &t in &[5u64, 1, 3, 3, 1, 5, 2] {
                let log = log.clone();
                sim.schedule_at(SimTime::from_secs(t), move |_| log.borrow_mut().push(t));
            }
            sim.run();
            let log = log.borrow();
            for w in log.windows(2) {
                assert!(w[0] <= w[1], "time order violated under {tb:?}");
            }
        }
    }

    #[test]
    fn trace_hash_is_invariant_for_commutative_events() {
        fn hash(tb: TieBreak) -> u64 {
            let mut sim = Sim::with_tie_break(0, tb);
            sim.record_trace();
            for i in 0..20u64 {
                // Same-timestamp events that do not interact: reordering
                // them must not change the schedule hash.
                sim.schedule_at_named("tick", SimTime::from_secs(i / 4), move |sim| {
                    sim.schedule_in_named("follow", SimDuration::from_millis(10), |_| {});
                });
            }
            sim.run();
            sim.take_trace().expect("trace recorded").schedule_hash()
        }
        let fifo = hash(TieBreak::Fifo);
        assert_eq!(fifo, hash(TieBreak::Lifo));
        assert_eq!(fifo, hash(TieBreak::Salted(1)));
        assert_eq!(fifo, hash(TieBreak::Salted(2)));
    }

    #[test]
    fn trace_hash_catches_order_dependent_events() {
        // A deliberate simulation race: same-timestamp events racing on a
        // shared flag, with the loser scheduling an extra event.
        fn hash(tb: TieBreak) -> u64 {
            let mut sim = Sim::with_tie_break(0, tb);
            sim.record_trace();
            let winner_decided = shared(false);
            for label in ["a", "b"] {
                let w = winner_decided.clone();
                sim.schedule_at_named(label, SimTime::from_secs(1), move |sim| {
                    if !*w.borrow() {
                        *w.borrow_mut() = true;
                    } else {
                        sim.schedule_in_named(
                            if label == "a" { "a.retry" } else { "b.retry" },
                            SimDuration::from_secs(1),
                            |_| {},
                        );
                    }
                });
            }
            sim.run();
            sim.take_trace().expect("trace recorded").schedule_hash()
        }
        assert_ne!(hash(TieBreak::Fifo), hash(TieBreak::Lifo));
    }

    #[test]
    fn peek_next_skips_cancelled() {
        let mut sim = Sim::new(0);
        let id = sim.schedule_at(SimTime::from_secs(1), |_| {});
        sim.schedule_at(SimTime::from_secs(2), |_| {});
        sim.cancel(id);
        assert_eq!(sim.peek_next(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn event_hook_observes_labels_without_changing_the_schedule() {
        fn run(hooked: bool) -> (u64, Vec<(SimTime, &'static str)>) {
            let mut sim = Sim::new(7);
            sim.record_trace();
            let seen = shared(Vec::new());
            if hooked {
                let seen = seen.clone();
                sim.set_event_hook(Box::new(move |at, label| {
                    seen.borrow_mut().push((at, label));
                }));
            }
            let cancelled = sim.schedule_at_named("never", SimTime::from_secs(3), |_| {});
            sim.cancel(cancelled);
            sim.schedule_at_named("b", SimTime::from_secs(2), |_| {});
            sim.schedule_at_named("a", SimTime::from_secs(1), |sim| {
                sim.schedule_in_named("a2", SimDuration::from_secs(5), |_| {});
            });
            sim.run();
            let hash = sim.take_trace().expect("trace recorded").schedule_hash();
            let seen = seen.borrow().clone();
            (hash, seen)
        }
        let (hash_on, seen) = run(true);
        let (hash_off, unobserved) = run(false);
        assert_eq!(hash_on, hash_off, "observation must be schedule-neutral");
        assert!(unobserved.is_empty());
        assert_eq!(
            seen,
            vec![
                (SimTime::from_secs(1), "a"),
                (SimTime::from_secs(2), "b"),
                (SimTime::from_secs(6), "a2"),
            ],
            "hook sees executed events only, cancelled ones never fire"
        );
    }

    #[test]
    fn events_pending_is_exact_under_cancellation() {
        let mut sim = Sim::new(0);
        let ids: Vec<EventId> =
            (1..=10u64).map(|t| sim.schedule_at(SimTime::from_secs(t), |_| {})).collect();
        assert_eq!(sim.events_pending(), 10);
        for id in ids.iter().take(4) {
            assert!(sim.cancel(*id));
        }
        // Cancelled events leave immediately — no tombstones counted.
        assert_eq!(sim.events_pending(), 6);
        assert!(!sim.cancel(ids[0]), "double cancel reports not-pending");
        assert_eq!(sim.events_pending(), 6);
        sim.run();
        assert_eq!(sim.events_pending(), 0);
        assert_eq!(sim.events_executed(), 6);
    }

    #[test]
    fn cancel_then_reschedule_same_event_id() {
        let mut sim = Sim::new(0);
        let fired = shared(Vec::new());
        let f = fired.clone();
        let id = sim.schedule_at(SimTime::from_secs(1), move |sim| {
            f.borrow_mut().push(sim.now());
        });
        // Reschedule moves the event; its handle stays valid.
        assert!(sim.reschedule_at(id, SimTime::from_secs(3)));
        assert!(sim.is_pending(id));
        // Cancel after reschedule kills the (moved) event for good...
        assert!(sim.cancel(id));
        assert!(!sim.is_pending(id));
        // ...after which the handle is stale for both operations.
        assert!(!sim.reschedule_at(id, SimTime::from_secs(5)));
        assert!(!sim.cancel(id));
        sim.run();
        assert!(fired.borrow().is_empty());
        assert_eq!(sim.events_executed(), 0);
    }

    #[test]
    fn reschedule_takes_a_fresh_slot_in_fifo_order() {
        let mut sim = Sim::new(0);
        let log = shared(Vec::new());
        let mut ids = Vec::new();
        for i in 0..3u32 {
            let log = log.clone();
            ids.push(sim.schedule_at(SimTime::from_secs(1), move |_| log.borrow_mut().push(i)));
        }
        // Move event 0 to the same timestamp: it re-enters FIFO order at
        // the back, exactly as if it had been cancelled and re-scheduled.
        assert!(sim.reschedule_at(ids[0], SimTime::from_secs(1)));
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 0]);
    }

    #[test]
    fn cancelling_the_head_promotes_the_next_event() {
        let mut sim = Sim::new(0);
        let log = shared(Vec::new());
        let mut ids = Vec::new();
        for t in 1..=3u64 {
            let log = log.clone();
            ids.push(sim.schedule_at(SimTime::from_secs(t), move |_| log.borrow_mut().push(t)));
        }
        assert!(sim.cancel(ids[0]));
        assert_eq!(sim.peek_next(), Some(SimTime::from_secs(2)));
        sim.run();
        assert_eq!(*log.borrow(), vec![2, 3]);
        assert_eq!(sim.now(), SimTime::from_secs(3));
    }

    #[test]
    fn same_time_cancellation_between_batched_events() {
        // Event A (t=1) cancels event B (also t=1) after the batch drain
        // has already pulled both out of the heap: B must not fire.
        let mut sim = Sim::new(0);
        let fired = shared(false);
        let f = fired.clone();
        let victim = shared(None);
        let v = victim.clone();
        sim.schedule_at(SimTime::from_secs(1), move |sim| {
            if let Some(id) = *v.borrow() {
                assert!(sim.cancel(id));
            }
        });
        let id = sim.schedule_at(SimTime::from_secs(1), move |_| *f.borrow_mut() = true);
        *victim.borrow_mut() = Some(id);
        sim.run();
        assert!(!*fired.borrow());
        assert_eq!(sim.events_executed(), 1);
    }

    #[test]
    fn mass_same_timestamp_ties_under_both_directed_tie_breaks() {
        for (tb, expect) in [
            (TieBreak::Fifo, (0..1000).collect::<Vec<u32>>()),
            (TieBreak::Lifo, (0..1000).rev().collect::<Vec<u32>>()),
        ] {
            let mut sim = Sim::with_tie_break(0, tb);
            let log = shared(Vec::new());
            for i in 0..1000u32 {
                let log = log.clone();
                sim.schedule_at(SimTime::from_secs(7), move |_| log.borrow_mut().push(i));
            }
            sim.run();
            assert_eq!(*log.borrow(), expect, "mass tie order wrong under {tb:?}");
        }
    }

    #[test]
    fn empty_queue_run_until_is_a_noop() {
        let mut sim = Sim::new(0);
        assert_eq!(sim.run_until(SimTime::from_secs(100)), SimTime::ZERO);
        assert_eq!(sim.events_executed(), 0);
        assert_eq!(sim.peek_next(), None);
        // And an emptied queue behaves the same way.
        sim.schedule_at(SimTime::from_secs(1), |_| {});
        sim.run();
        assert_eq!(sim.run_until(SimTime::from_secs(100)), SimTime::from_secs(1));
    }

    #[test]
    fn lifo_interloper_scheduled_mid_batch_fires_first() {
        // Under LIFO, an event scheduled while its same-timestamp batch is
        // being dispatched outranks the rest of the batch. The batched
        // drain must hand it out first (the merge check in queue::pop).
        let mut sim = Sim::with_tie_break(0, TieBreak::Lifo);
        let log = shared(Vec::new());
        for i in 0..3u32 {
            let log = log.clone();
            sim.schedule_at(SimTime::from_secs(1), move |sim| {
                log.borrow_mut().push(i);
                if i == 2 {
                    // First to fire under LIFO; schedules an interloper.
                    let log = log.clone();
                    sim.schedule_at(SimTime::from_secs(1), move |_| log.borrow_mut().push(99));
                }
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![2, 99, 1, 0]);
    }
}

#[cfg(test)]
mod equivalence {
    //! The reference-model gate: random schedule/cancel/reschedule/pop
    //! sequences must pop in bit-identical order from the old
    //! `BinaryHeap`+tombstone queue and the new indexed queue, under
    //! every tie-break mode.

    use proptest::prelude::*;

    use super::reference::RefQueue;
    use super::TieBreak;
    use crate::queue::EventQueue;
    use crate::time::SimTime;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn indexed_queue_matches_the_old_heap(
            ops in proptest::collection::vec((0u8..8, any::<u64>(), 0u64..64), 1..200),
            tb_sel in 0u8..4
        ) {
            let tie = match tb_sel {
                0 => TieBreak::Fifo,
                1 => TieBreak::Lifo,
                s => TieBreak::Salted(0xC0FFEE ^ s as u64),
            };
            let mut new_q: EventQueue<u32> = EventQueue::new();
            let mut old_q = RefQueue::default();
            // Live handle pairs: (new-queue id, old-queue token).
            let mut handles: Vec<(crate::queue::EventId, u64)> = Vec::new();
            let mut now = SimTime::ZERO;
            let mut seq = 0u64;
            let mut next_value = 0u32;

            for (kind, a, delta) in ops {
                match kind {
                    // Schedule (weighted x3): a small delta range forces
                    // plenty of same-timestamp ties.
                    0..=2 => {
                        let at = now + crate::time::SimDuration::from_nanos(delta);
                        let key = tie.ord_key(seq);
                        seq += 1;
                        let id = new_q.insert(at, key, next_value);
                        let token = old_q.insert(at, key, next_value);
                        handles.push((id, token));
                        next_value += 1;
                    }
                    3 => {
                        if handles.is_empty() {
                            continue;
                        }
                        let (id, token) = handles[a as usize % handles.len()];
                        let cancelled_new = new_q.cancel(id);
                        let cancelled_old = old_q.cancel(token);
                        prop_assert_eq!(cancelled_new, cancelled_old, "cancel liveness diverged");
                    }
                    4 => {
                        if handles.is_empty() {
                            continue;
                        }
                        let ix = a as usize % handles.len();
                        let (id, token) = handles[ix];
                        let at = now + crate::time::SimDuration::from_nanos(delta);
                        let key = tie.ord_key(seq);
                        let moved_new = new_q.reschedule(id, at, key).is_some();
                        let moved_old = old_q.reschedule(token, at, key);
                        prop_assert_eq!(moved_new, moved_old.is_some(), "reschedule liveness diverged");
                        if let Some(new_token) = moved_old {
                            seq += 1;
                            handles[ix] = (id, new_token);
                        }
                    }
                    // Pop (weighted x3).
                    _ => {
                        let popped_new = new_q.pop();
                        let popped_old = old_q.pop();
                        prop_assert_eq!(popped_new, popped_old, "pop order diverged");
                        if let Some((at, _)) = popped_new {
                            now = at;
                        }
                    }
                }
                prop_assert_eq!(new_q.len(), old_q.len(), "pending counts diverged");
            }
            // Drain both to the end: the full remaining schedule must agree.
            loop {
                let popped_new = new_q.pop();
                let popped_old = old_q.pop();
                prop_assert_eq!(popped_new, popped_old, "drain order diverged");
                if popped_new.is_none() {
                    break;
                }
            }
        }
    }
}
