//! The discrete-event kernel.
//!
//! A [`Sim`] owns a priority queue of scheduled actions, a virtual clock, and
//! a seeded random-number generator. Execution is strictly deterministic:
//! events at equal timestamps fire in the order they were scheduled, and all
//! randomness flows through the kernel's single seeded RNG.
//!
//! Model state lives in [`Shared`] cells (`Rc<RefCell<_>>`); scheduled
//! closures capture clones of those cells and receive `&mut Sim` so they can
//! read the clock, draw randomness, and schedule follow-up events.

use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::time::{SimDuration, SimTime};

/// Shared, interiorly-mutable model state for single-threaded simulation.
pub type Shared<T> = Rc<RefCell<T>>;

/// Wraps a value in a [`Shared`] cell.
pub fn shared<T>(value: T) -> Shared<T> {
    Rc::new(RefCell::new(value))
}

/// Handle for a scheduled event, usable to cancel it before it fires.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

type Action = Box<dyn FnOnce(&mut Sim)>;

struct Entry {
    at: SimTime,
    seq: u64,
    id: EventId,
    action: Action,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic discrete-event simulator.
pub struct Sim {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Entry>,
    cancelled: HashSet<EventId>,
    rng: StdRng,
    executed: u64,
}

impl Sim {
    /// Creates a simulator whose RNG is seeded with `seed`.
    ///
    /// Two simulators created with the same seed and fed the same schedule of
    /// events produce bit-identical results.
    pub fn new(seed: u64) -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            cancelled: HashSet::new(),
            rng: StdRng::seed_from_u64(seed),
            executed: 0,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending (including cancelled tombstones).
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// The kernel's deterministic random-number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Schedules `action` to run at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: SimTime, action: impl FnOnce(&mut Sim) + 'static) -> EventId {
        assert!(at >= self.now, "cannot schedule into the past: {at} < {}", self.now);
        let id = EventId(self.seq);
        self.queue.push(Entry { at, seq: self.seq, id, action: Box::new(action) });
        self.seq += 1;
        id
    }

    /// Schedules `action` to run `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut Sim) + 'static,
    ) -> EventId {
        self.schedule_at(self.now + delay, action)
    }

    /// Cancels a pending event. Has no effect if the event already fired.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id);
    }

    /// Executes the next pending event, advancing the clock to its timestamp.
    ///
    /// Returns the time of the executed event, or `None` if the queue was
    /// empty (cancelled events are skipped silently).
    pub fn step(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.queue.pop() {
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            debug_assert!(entry.at >= self.now);
            self.now = entry.at;
            self.executed += 1;
            (entry.action)(self);
            return Some(entry.at);
        }
        None
    }

    /// Runs until the event queue drains. Returns the final time.
    pub fn run(&mut self) -> SimTime {
        while self.step().is_some() {}
        self.now
    }

    /// Runs until the queue drains or the next event would fire after
    /// `horizon`. Events at exactly `horizon` are executed. The clock is left
    /// at the later of its current value and `horizon` only if an event
    /// actually advanced it; otherwise it stays at the last executed event.
    pub fn run_until(&mut self, horizon: SimTime) -> SimTime {
        while let Some(entry) = self.queue.peek() {
            if entry.at > horizon {
                break;
            }
            self.step();
        }
        self.now
    }

    /// Runs for at most `budget` more virtual time.
    pub fn run_for(&mut self, budget: SimDuration) -> SimTime {
        let horizon = self.now + budget;
        self.run_until(horizon)
    }

    /// The timestamp of the next pending (non-cancelled) event, if any.
    pub fn peek_next(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.queue.peek() {
            if self.cancelled.contains(&entry.id) {
                let entry = self.queue.pop().expect("peeked entry vanished");
                self.cancelled.remove(&entry.id);
                continue;
            }
            return Some(entry.at);
        }
        None
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(0);
        let log = shared(Vec::new());
        for &t in &[30u64, 10, 20] {
            let log = log.clone();
            sim.schedule_at(SimTime::from_secs(t), move |sim| {
                log.borrow_mut().push(sim.now().as_nanos() / 1_000_000_000);
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![10, 20, 30]);
        assert_eq!(sim.now(), SimTime::from_secs(30));
    }

    #[test]
    fn equal_timestamps_fire_fifo() {
        let mut sim = Sim::new(0);
        let log = shared(Vec::new());
        for i in 0..100 {
            let log = log.clone();
            sim.schedule_at(SimTime::from_secs(1), move |_| log.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut sim = Sim::new(0);
        let fired = shared(false);
        let f = fired.clone();
        let id = sim.schedule_in(SimDuration::from_secs(1), move |_| *f.borrow_mut() = true);
        sim.cancel(id);
        sim.run();
        assert!(!*fired.borrow());
        assert_eq!(sim.events_executed(), 0);
    }

    #[test]
    fn nested_scheduling_chains() {
        let mut sim = Sim::new(0);
        let count = shared(0u32);
        fn tick(sim: &mut Sim, count: Shared<u32>) {
            *count.borrow_mut() += 1;
            if *count.borrow() < 5 {
                sim.schedule_in(SimDuration::from_secs(1), move |sim| tick(sim, count));
            }
        }
        let c = count.clone();
        sim.schedule_at(SimTime::ZERO, move |sim| tick(sim, c));
        sim.run();
        assert_eq!(*count.borrow(), 5);
        assert_eq!(sim.now(), SimTime::from_secs(4));
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = Sim::new(0);
        let log = shared(Vec::new());
        for t in 1..=10u64 {
            let log = log.clone();
            sim.schedule_at(SimTime::from_secs(t), move |_| log.borrow_mut().push(t));
        }
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(*log.borrow(), vec![1, 2, 3, 4, 5]);
        sim.run();
        assert_eq!(log.borrow().len(), 10);
    }

    #[test]
    fn determinism_across_runs() {
        fn run_once() -> Vec<u64> {
            use rand::Rng;
            let mut sim = Sim::new(42);
            let out = shared(Vec::new());
            for _ in 0..50 {
                let out = out.clone();
                sim.schedule_in(SimDuration::from_millis(1), move |sim| {
                    let v: u64 = sim.rng().gen();
                    out.borrow_mut().push(v);
                });
            }
            sim.run();
            let v = out.borrow().clone();
            v
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    #[should_panic]
    fn scheduling_into_past_panics() {
        let mut sim = Sim::new(0);
        sim.schedule_at(SimTime::from_secs(10), |_| {});
        sim.run();
        sim.schedule_at(SimTime::from_secs(5), |_| {});
    }

    #[test]
    fn peek_next_skips_cancelled() {
        let mut sim = Sim::new(0);
        let id = sim.schedule_at(SimTime::from_secs(1), |_| {});
        sim.schedule_at(SimTime::from_secs(2), |_| {});
        sim.cancel(id);
        assert_eq!(sim.peek_next(), Some(SimTime::from_secs(2)));
    }
}
