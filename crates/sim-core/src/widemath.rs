//! Overflow-proof `u64` arithmetic for bytes × bandwidth × time terms.
//!
//! The transport-cost expressions all share one shape: multiply a byte
//! count by a scale (nanoseconds per second, bits per byte) and divide by
//! a rate. Done naively in `u64` the product overflows already at ~18.4 GB
//! of payload (`bytes * 1e9 > u64::MAX`), which the original line-based
//! simlint could only catch by pattern luck. These helpers widen through
//! `u128`, round the way queueing math needs (up — a transfer is not done
//! until its last bit lands), and clamp back to `u64::MAX` rather than
//! wrapping. The `unchecked-width-math` lint rule treats a statement that
//! routes through this module as sanitized.

/// `ceil(a * b / d)` computed in `u128`, clamped to `u64::MAX`.
///
/// This is the wire-time kernel: `mul_div_ceil(bytes, NANOS_PER_SEC, bps)`
/// is the nanoseconds a payload occupies a link, never rounded to zero for
/// sub-nanosecond transfers and never overflowing for huge ones.
///
/// Panics if `d` is zero — rate divisors are validated at configuration
/// construction, so a zero here is a caller bug, not a data condition.
pub fn mul_div_ceil(a: u64, b: u64, d: u64) -> u64 {
    assert!(d > 0, "widemath::mul_div_ceil divisor must be positive");
    clamp((a as u128 * b as u128).div_ceil(d as u128))
}

/// `floor(a * b / d)` computed in `u128`, clamped to `u64::MAX`.
///
/// The rounding-down sibling of [`mul_div_ceil`], for capacity-style
/// quantities ("how many whole units fit") rather than durations.
///
/// Panics if `d` is zero, as for [`mul_div_ceil`].
pub fn mul_div_floor(a: u64, b: u64, d: u64) -> u64 {
    assert!(d > 0, "widemath::mul_div_floor divisor must be positive");
    clamp(a as u128 * b as u128 / d as u128)
}

/// `a * b` computed in `u128`, clamped to `u64::MAX` instead of wrapping.
pub fn mul_clamp(a: u64, b: u64) -> u64 {
    clamp(a as u128 * b as u128)
}

fn clamp(wide: u128) -> u64 {
    u64::try_from(wide).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_match_naive_math() {
        assert_eq!(mul_div_ceil(1_000_000, 1_000_000_000, 1_600_000_000), 625_000);
        assert_eq!(mul_div_floor(10, 3, 4), 7);
        assert_eq!(mul_div_ceil(10, 3, 4), 8);
        assert_eq!(mul_clamp(6, 7), 42);
    }

    #[test]
    fn sub_unit_results_round_up_not_to_zero() {
        // 1 byte at 8 Gbps is an eighth of a nanosecond: ceil keeps it
        // visible instead of truncating the transfer to instantaneous.
        assert_eq!(mul_div_ceil(1, 1_000_000_000, 8_000_000_000), 1);
        assert_eq!(mul_div_floor(1, 1_000_000_000, 8_000_000_000), 0);
    }

    #[test]
    fn huge_products_clamp_instead_of_wrapping() {
        // 20 GB * 1e9 overflows u64 ~1000x over; the u128 widening keeps
        // the quotient exact.
        assert_eq!(
            mul_div_ceil(20_000_000_000, 1_000_000_000, 1_000_000_000),
            20_000_000_000
        );
        // u64::MAX bytes at 1 bps clamps rather than wrapping.
        assert_eq!(mul_div_ceil(u64::MAX, 1_000_000_000, 1), u64::MAX);
        assert_eq!(mul_clamp(u64::MAX, 2), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "divisor must be positive")]
    fn zero_divisor_is_a_caller_bug() {
        mul_div_ceil(1, 1, 0);
    }
}
