//! Schedule tracing for the invariance checker ("simulation race detector").
//!
//! When tracing is enabled, the kernel records every executed event's
//! `(timestamp, label)` into per-timestamp buckets. Within a bucket the
//! event hashes combine **commutatively** (wrapping addition), because a
//! perturbed same-timestamp tie-break is allowed to permute execution order
//! inside one timestamp without that counting as divergence; across buckets
//! the hashes chain in time order, so any shift of an event to a different
//! timestamp, a missing or extra event, or a changed label changes the
//! final hash. Sequence numbers are recorded for diagnostics but excluded
//! from the hash: a perturbed tie-break legitimately reassigns the seq
//! numbers of follow-up events.

use crate::time::SimTime;

/// FNV-1a hash of a label.
pub(crate) fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: a bijective bit mixer.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// All events that executed at one timestamp.
#[derive(Clone, Debug)]
pub struct TraceBucket {
    /// The shared timestamp.
    pub at: SimTime,
    /// Commutative combination of the bucket's event hashes.
    pub hash: u64,
    /// Labels of the events, in execution order (diagnostics only; the
    /// hash is order-independent).
    pub labels: Vec<&'static str>,
    /// Kernel sequence numbers, parallel to `labels` (diagnostics only).
    pub seqs: Vec<u64>,
}

impl TraceBucket {
    fn new(at: SimTime) -> TraceBucket {
        // simlint: allow(alloc-in-hot-path, empty Vec::new is alloc-free; the buffers grow amortized per distinct timestamp, not per event)
        TraceBucket { at, hash: 0, labels: Vec::new(), seqs: Vec::new() }
    }

    fn record(&mut self, label: &'static str, seq: u64) {
        // Wrapping addition keeps the bucket hash invariant under
        // permutation while still counting duplicate labels (XOR would
        // cancel a label appearing twice).
        self.hash = self.hash.wrapping_add(mix64(fnv1a(label)));
        self.labels.push(label);
        self.seqs.push(seq);
    }

    /// The bucket's labels as a sorted multiset, for readable diffs.
    pub fn sorted_labels(&self) -> Vec<&'static str> {
        let mut v = self.labels.clone();
        v.sort_unstable();
        v
    }
}

/// A recorded execution schedule: one bucket per distinct timestamp.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    buckets: Vec<TraceBucket>,
    events: u64,
}

impl Trace {
    pub(crate) fn record(&mut self, at: SimTime, label: &'static str, seq: u64) {
        self.events += 1;
        match self.buckets.last_mut() {
            Some(last) if last.at == at => last.record(label, seq),
            _ => {
                debug_assert!(
                    self.buckets.last().is_none_or(|b| b.at < at),
                    "trace timestamps must be nondecreasing"
                );
                let mut b = TraceBucket::new(at);
                b.record(label, seq);
                self.buckets.push(b);
            }
        }
    }

    /// Total events recorded.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The per-timestamp buckets, in time order.
    pub fn buckets(&self) -> &[TraceBucket] {
        &self.buckets
    }

    /// Hash of the whole schedule: bucket hashes chained in time order,
    /// each mixed with its timestamp. Identical iff the two runs executed
    /// the same multiset of labels at every timestamp.
    pub fn schedule_hash(&self) -> u64 {
        let mut h: u64 = 0xA076_1D64_78BD_642F;
        for b in &self.buckets {
            h = mix64(h ^ b.at.as_nanos() ^ b.hash);
        }
        h ^ self.events
    }

    /// Finds the first timestamp where two traces disagree, if any.
    pub fn first_divergence(&self, other: &Trace) -> Option<Divergence> {
        let n = self.buckets.len().min(other.buckets.len());
        for i in 0..n {
            let (a, b) = (&self.buckets[i], &other.buckets[i]);
            if a.at != b.at || a.hash != b.hash {
                return Some(Divergence {
                    bucket_index: i,
                    left_at: Some(a.at),
                    right_at: Some(b.at),
                    left_labels: a.sorted_labels(),
                    right_labels: b.sorted_labels(),
                });
            }
        }
        match self.buckets.len().cmp(&other.buckets.len()) {
            std::cmp::Ordering::Equal => None,
            _ => {
                let (a, b) = (self.buckets.get(n), other.buckets.get(n));
                Some(Divergence {
                    bucket_index: n,
                    left_at: a.map(|x| x.at),
                    right_at: b.map(|x| x.at),
                    left_labels: a.map(|x| x.sorted_labels()).unwrap_or_default(),
                    right_labels: b.map(|x| x.sorted_labels()).unwrap_or_default(),
                })
            }
        }
    }
}

/// A pinpointed schedule divergence between two traces.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Index of the first differing bucket.
    pub bucket_index: usize,
    /// Timestamp of that bucket in the left trace (`None` = trace ended).
    pub left_at: Option<SimTime>,
    /// Timestamp of that bucket in the right trace (`None` = trace ended).
    pub right_at: Option<SimTime>,
    /// Sorted label multiset of the left bucket.
    pub left_labels: Vec<&'static str>,
    /// Sorted label multiset of the right bucket.
    pub right_labels: Vec<&'static str>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "first divergent timestamp (bucket #{}):", self.bucket_index)?;
        match (self.left_at, self.right_at) {
            (Some(l), Some(r)) if l == r => writeln!(f, "  at {l}: same time, different events")?,
            (l, r) => writeln!(f, "  left at {l:?}, right at {r:?}")?,
        }
        writeln!(f, "  left  events: {:?}", self.left_labels)?;
        write!(f, "  right events: {:?}", self.right_labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_within_timestamp_is_invariant() {
        let t = SimTime::from_secs(1);
        let mut a = Trace::default();
        a.record(t, "x", 0);
        a.record(t, "y", 1);
        a.record(t, "x", 2);
        let mut b = Trace::default();
        b.record(t, "y", 5);
        b.record(t, "x", 6);
        b.record(t, "x", 7);
        assert_eq!(a.schedule_hash(), b.schedule_hash());
        assert!(a.first_divergence(&b).is_none());
    }

    #[test]
    fn duplicate_labels_do_not_cancel() {
        let t = SimTime::from_secs(1);
        let mut a = Trace::default();
        a.record(t, "x", 0);
        a.record(t, "x", 1);
        let mut b = Trace::default();
        b.record(t, "y", 0);
        b.record(t, "y", 1);
        assert_ne!(a.schedule_hash(), b.schedule_hash());
    }

    #[test]
    fn shifted_timestamp_diverges() {
        let mut a = Trace::default();
        a.record(SimTime::from_secs(1), "x", 0);
        let mut b = Trace::default();
        b.record(SimTime::from_secs(2), "x", 0);
        assert_ne!(a.schedule_hash(), b.schedule_hash());
        let d = a.first_divergence(&b).expect("divergence");
        assert_eq!(d.bucket_index, 0);
        assert_eq!(d.left_at, Some(SimTime::from_secs(1)));
        assert_eq!(d.right_at, Some(SimTime::from_secs(2)));
    }

    #[test]
    fn missing_tail_diverges() {
        let mut a = Trace::default();
        a.record(SimTime::from_secs(1), "x", 0);
        a.record(SimTime::from_secs(2), "y", 1);
        let mut b = Trace::default();
        b.record(SimTime::from_secs(1), "x", 0);
        assert_ne!(a.schedule_hash(), b.schedule_hash());
        let d = a.first_divergence(&b).expect("divergence");
        assert_eq!(d.bucket_index, 1);
        assert_eq!(d.right_at, None);
        assert_eq!(d.left_labels, vec!["y"]);
    }

    #[test]
    fn different_label_pinpointed_with_multisets() {
        let t = SimTime::from_millis(5);
        let mut a = Trace::default();
        a.record(SimTime::ZERO, "boot", 0);
        a.record(t, "emit", 1);
        a.record(t, "policy", 2);
        let mut b = Trace::default();
        b.record(SimTime::ZERO, "boot", 0);
        b.record(t, "emit", 1);
        b.record(t, "emit", 2);
        let d = a.first_divergence(&b).expect("divergence");
        assert_eq!(d.bucket_index, 1);
        assert_eq!(d.left_labels, vec!["emit", "policy"]);
        assert_eq!(d.right_labels, vec!["emit", "emit"]);
        assert!(d.to_string().contains("same time, different events"));
    }
}
