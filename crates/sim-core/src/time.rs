//! Virtual time for the discrete-event kernel.
//!
//! Instants ([`SimTime`]) and durations ([`SimDuration`]) are kept as separate
//! newtypes over nanoseconds so that the type system rules out the classic
//! instant-plus-instant bug. Both are `Copy`, total-ordered, and hashable, so
//! they can key event queues and statistics maps directly.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, in nanoseconds since the start of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from whole nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Builds an instant from whole microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Builds an instant from whole milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Builds an instant from whole seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "time went backwards: {earlier} > {self}");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating difference; zero if `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a duration from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Whole nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncated).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies by a float factor, rounding to nanoseconds; saturates at the
    /// representable maximum.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(factor.is_finite() && factor >= 0.0, "invalid factor: {factor}");
        let ns = self.0 as f64 * factor;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns.round() as u64)
        }
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "duration underflow: {self} - {rhs}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_nanos(2_000_000_000));
    }

    #[test]
    fn arithmetic_round_trip() {
        let t0 = SimTime::from_secs(5);
        let d = SimDuration::from_millis(1500);
        let t1 = t0 + d;
        assert_eq!(t1.since(t0), d);
        assert_eq!(t1 - d, t0);
        assert_eq!(t1 - t0, d);
    }

    #[test]
    fn saturating_since_is_zero_for_future() {
        let t0 = SimTime::from_secs(1);
        let t1 = SimTime::from_secs(2);
        assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d / 4, SimDuration::from_millis(2500));
        assert_eq!(d * 3, SimDuration::from_secs(30));
        assert!((d / SimDuration::from_secs(4) - 2.5).abs() < 1e-12);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1.5), SimDuration::from_millis(1500));
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration =
            (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    #[should_panic]
    fn negative_seconds_rejected() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
