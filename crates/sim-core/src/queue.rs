//! The indexed event queue behind [`Sim`](crate::Sim).
//!
//! Layout (DESIGN.md §12): a **slab arena** of event cells with a free
//! list (O(1) slot reuse, no per-event map), an **index-mapped four-ary
//! min-heap** ordered by timestamp alone, and a **batched
//! same-timestamp drain**: when the head of the heap is reached, every
//! event sharing its timestamp is popped into a reusable batch buffer
//! in one pass, sorted once by tie-break key, and dispatched by cursor.
//!
//! The hot structures are structure-of-arrays and deliberately small:
//!
//! * `heap_at: Vec<SimTime>` — 8-byte ranks; a four-child sibling group
//!   is 32 bytes, so a sift level reads one or two cache lines instead
//!   of the three a heap of inline `(time, key, payload…)` entries
//!   costs. The heap is a four-root forest (children of `i` live at
//!   `4i + 4 ..= 4i + 7`, the parent of `j` is `j/4 - 1`), which keeps
//!   sibling groups contiguous without padding arithmetic.
//! * `heap_slot: Vec<u32>` — parallel to `heap_at`; maps heap positions
//!   back to arena slots.
//! * `slot_pos: Vec<u32>` — dense per-slot heap positions (or the
//!   [`IN_BATCH`]/[`FREE`] sentinels), giving O(log n) cancel and
//!   reschedule by index instead of tombstones. Kept out of the payload
//!   cells so sift position-updates write a compact array.
//! * `slot_key: Vec<u64>` — dense per-slot tie-break keys, read when a
//!   same-timestamp batch is sorted.
//!
//! Sifts are hole-based: the moving entry is held in locals and written
//! once at its final position.
//!
//! Determinism contract: pop order is *exactly* the total order
//! `(time, ord_key)` the old `BinaryHeap` implementation produced. The
//! caller must keep tie-break keys unique among pending events (the
//! kernel derives them bijectively from the global insertion counter),
//! which makes the per-batch key sort a total order. Before each batch
//! entry is handed out the heap head is consulted, so an event scheduled
//! *during* the batch at the same timestamp (e.g. under
//! [`TieBreak::Lifo`](crate::TieBreak), where it outranks the whole
//! batch) is folded in and the remaining batch re-sorted. The
//! reference-model proptest in [`crate::kernel`] replays random
//! schedule/cancel/reschedule sequences through the old heap and this
//! queue and asserts identical pop sequences.

use crate::time::SimTime;

/// Handle for a scheduled event, usable to cancel or reschedule it
/// before it fires.
///
/// Internally packs the event's slab slot index with the slot's
/// generation counter, so a handle held across the event's execution
/// (or cancellation) goes stale instead of aliasing whatever event
/// reuses the slot.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

impl EventId {
    fn new(slot: u32, generation: u32) -> EventId {
        EventId((u64::from(generation) << 32) | u64::from(slot))
    }

    fn slot(self) -> u32 {
        self.0 as u32
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// A batch member: the slot plus the tie-break key it was batched
/// under. The key doubles as an incarnation check — a slot rescheduled
/// out of the batch and folded back in later carries a fresh key, so
/// its stale entry no longer matches `slot_key` and is skipped.
#[derive(Clone, Copy)]
struct BatchEntry {
    slot: u32,
    key: u64,
}

/// `slot_pos` sentinel: the slot is in the batch buffer, not the heap.
const IN_BATCH: u32 = u32::MAX;
/// `slot_pos` sentinel: the slot is on the free list.
const FREE: u32 = u32::MAX - 1;

struct Cell<T> {
    generation: u32,
    /// `None` once the event executed or was cancelled. A cancelled slot
    /// that already moved to the batch keeps its arena slot (payload
    /// dropped eagerly) until the batch cursor passes it, so the batch
    /// never dangles into a reused slot.
    payload: Option<T>,
}

/// Index-mapped four-ary heap over a slab arena, with batched
/// same-timestamp draining. Not a general priority queue: the caller
/// (the kernel) guarantees inserts never predate the current batch
/// timestamp and keeps keys unique, which is what makes the batch sound.
pub(crate) struct EventQueue<T> {
    cells: Vec<Cell<T>>,
    /// Parallel to `cells`: index into the heap arrays, or [`IN_BATCH`] /
    /// [`FREE`].
    slot_pos: Vec<u32>,
    /// Parallel to `cells`: the event's current tie-break key.
    slot_key: Vec<u64>,
    free: Vec<u32>,
    heap_at: Vec<SimTime>,
    heap_slot: Vec<u32>,
    batch: Vec<BatchEntry>,
    batch_cursor: usize,
    batch_time: SimTime,
    /// Live (scheduled, not yet executed or cancelled) events.
    pending: usize,
}

impl<T> EventQueue<T> {
    pub(crate) fn new() -> EventQueue<T> {
        EventQueue {
            cells: Vec::new(),
            slot_pos: Vec::new(),
            slot_key: Vec::new(),
            free: Vec::new(),
            heap_at: Vec::new(),
            heap_slot: Vec::new(),
            batch: Vec::new(),
            batch_cursor: 0,
            batch_time: SimTime::ZERO,
            pending: 0,
        }
    }

    /// Number of live events (exact: cancelled events leave immediately).
    pub(crate) fn len(&self) -> usize {
        self.pending
    }

    /// Schedules a payload at `(at, key)` and returns its handle. `key`
    /// must be unique among pending events.
    pub(crate) fn insert(&mut self, at: SimTime, key: u64, payload: T) -> EventId {
        let slot = match self.free.pop() {
            Some(s) => {
                let cell = &mut self.cells[s as usize];
                cell.payload = Some(payload);
                s
            }
            None => {
                let s = self.cells.len() as u32;
                self.cells.push(Cell { generation: 0, payload: Some(payload) });
                self.slot_pos.push(FREE);
                self.slot_key.push(0);
                s
            }
        };
        self.slot_key[slot as usize] = key;
        let generation = self.cells[slot as usize].generation;
        self.pending += 1;
        self.heap_push(at, slot);
        EventId::new(slot, generation)
    }

    /// Whether `id` refers to a live event.
    pub(crate) fn contains(&self, id: EventId) -> bool {
        self.live_slot(id).is_some()
    }

    /// The live slot index behind `id`, if the handle is not stale.
    fn live_slot(&self, id: EventId) -> Option<usize> {
        let slot = id.slot() as usize;
        let cell = self.cells.get(slot)?;
        (cell.generation == id.generation() && cell.payload.is_some()).then_some(slot)
    }

    /// Cancels a live event, removing it from the queue immediately.
    /// Returns `false` for stale handles (already executed, cancelled,
    /// or rescheduled-and-executed).
    pub(crate) fn cancel(&mut self, id: EventId) -> bool {
        let Some(slot) = self.live_slot(id) else { return false };
        self.pending -= 1;
        self.cells[slot].payload = None;
        let pos = self.slot_pos[slot];
        if pos == IN_BATCH {
            // The batch buffer still points at the slot; it is freed when
            // the cursor passes it (see `skip_consumed_batch_entries`).
        } else {
            self.heap_remove(pos as usize);
            self.free_slot(slot);
        }
        true
    }

    /// Moves a live event to a new `(at, key)` rank, keeping its handle
    /// valid. Returns a mutable borrow of its payload so the caller can
    /// restamp bookkeeping (the kernel updates the trace sequence
    /// number), or `None` for stale handles.
    pub(crate) fn reschedule(&mut self, id: EventId, at: SimTime, key: u64) -> Option<&mut T> {
        let slot = self.live_slot(id)?;
        let pos = self.slot_pos[slot];
        self.slot_key[slot] = key;
        if pos == IN_BATCH {
            // Leaving the batch: the stale batch entry is skipped when the
            // cursor reaches it (its key no longer matches `slot_key`).
            self.heap_push(at, slot as u32);
        } else {
            self.heap_remove(pos as usize);
            self.heap_push(at, slot as u32);
        }
        self.cells[slot].payload.as_mut()
    }

    /// The timestamp of the next live event, if any. `&mut` because
    /// cancelled batch leftovers are retired lazily here and in
    /// [`pop`](EventQueue::pop).
    pub(crate) fn peek(&mut self) -> Option<SimTime> {
        self.skip_consumed_batch_entries();
        if self.batch_cursor < self.batch.len() {
            return Some(self.batch_time);
        }
        self.root_at()
    }

    /// Removes and returns the next event in `(time, key)` order,
    /// refilling the batch from the heap (all events at the minimum
    /// timestamp, in one pass) when the previous batch is exhausted.
    pub(crate) fn pop(&mut self) -> Option<(SimTime, T)> {
        self.skip_consumed_batch_entries();
        if self.batch_cursor >= self.batch.len() {
            // Fresh drain. A singleton timestamp — the common case in
            // sparse schedules — skips the batch buffer entirely.
            let (at, slot) = self.heap_pop_root()?;
            self.batch_time = at;
            if self.root_at() != Some(at) {
                // Start streaming the next pop's sift path while the
                // caller executes this event's action — the next root is
                // already decided, so its first two levels can be in
                // flight before the next pop begins.
                self.prefetch_next_sift();
                let slot = slot as usize;
                return self.take_slot(slot).map(|p| (at, p));
            }
            self.mark_batched(slot);
            self.drain_ties_into_batch();
        } else if self.root_at() == Some(self.batch_time) {
            // Merge check: events scheduled *during* the batch at its
            // timestamp (LIFO does this on every same-time schedule) are
            // folded in and the remaining batch re-sorted by key.
            self.drain_ties_into_batch();
        }
        self.skip_consumed_batch_entries();
        let cursor = self.batch_cursor;
        let next = self.batch[cursor];
        self.batch_cursor += 1;
        self.take_slot(next.slot as usize).map(|p| (self.batch_time, p))
    }

    /// Pops every heap event at `batch_time` into the batch buffer, then
    /// sorts the undispatched batch suffix by tie-break key. Keys are
    /// unique, so the sort is a total (deterministic) order.
    fn drain_ties_into_batch(&mut self) {
        while self.root_at() == Some(self.batch_time) {
            let Some((_, slot)) = self.heap_pop_root() else { break };
            self.mark_batched(slot);
        }
        let cursor = self.batch_cursor;
        if let Some(tail) = self.batch.get_mut(cursor..) {
            tail.sort_unstable_by_key(|e| e.key);
        }
    }

    /// Advances the batch cursor past entries that no longer belong to
    /// the batch: cancelled slots (freed here) and rescheduled slots
    /// (already back in the heap under a fresh key; not freed).
    fn skip_consumed_batch_entries(&mut self) {
        while self.batch_cursor < self.batch.len() {
            let entry = self.batch[self.batch_cursor];
            let slot = entry.slot as usize;
            if self.slot_pos[slot] != IN_BATCH || self.slot_key[slot] != entry.key {
                self.batch_cursor += 1; // rescheduled away; slot lives on
            } else if self.cells[slot].payload.is_none() {
                self.batch_cursor += 1; // cancelled while batched
                self.free_slot(slot);
            } else {
                break;
            }
        }
        if self.batch_cursor >= self.batch.len() && !self.batch.is_empty() {
            self.batch.clear();
            self.batch_cursor = 0;
        }
    }

    fn mark_batched(&mut self, slot: u32) {
        let key = self.slot_key[slot as usize];
        self.slot_pos[slot as usize] = IN_BATCH;
        self.batch.push(BatchEntry { slot, key });
    }

    /// Takes the payload out of a slot and frees it.
    fn take_slot(&mut self, slot: usize) -> Option<T> {
        let payload = self.cells[slot].payload.take();
        debug_assert!(payload.is_some(), "consumed a dead slot");
        self.pending -= 1;
        self.free_slot(slot);
        payload
    }

    /// Returns a slot to the free list, bumping its generation so
    /// outstanding handles go stale.
    fn free_slot(&mut self, slot: usize) {
        let cell = &mut self.cells[slot];
        cell.generation = cell.generation.wrapping_add(1);
        debug_assert!(cell.payload.is_none());
        self.slot_pos[slot] = FREE;
        self.free.push(slot as u32);
    }

    // ---- four-ary index-mapped heap (four-root forest) ----
    //
    // Children of `i` live at `4i + 4 ..= 4i + 7`; the parent of `j ≥ 4`
    // is `j/4 - 1`; positions 0..4 are independent roots (the minimum is
    // found by scanning them — one hot cache line). The +4 offset keeps
    // every sibling group contiguous from position 0, and four 8-byte
    // ranks span at most two cache lines per sift level. Sifts hold the
    // moving entry in locals ("hole" style), so each level costs one
    // rank move, one slot move, and one dense position write.

    /// Touches the first two levels of the sift path the *next* root pop
    /// will walk. Called on the way out of [`pop`](EventQueue::pop) so
    /// the loads overlap with the caller's event action.
    fn prefetch_next_sift(&self) {
        let Some(root) = self.root_pos() else { return };
        let len = self.heap_at.len();
        let child = 4 * root + 4;
        if child < len {
            std::hint::black_box(self.heap_at[child]);
            std::hint::black_box(self.heap_slot[child]);
            let grand = 4 * child + 4;
            if grand < len {
                std::hint::black_box(self.heap_at[grand]);
                let grand_mid = (grand + 8).min(len - 1);
                std::hint::black_box(self.heap_at[grand_mid]);
            }
        }
    }

    /// Position of the minimum root, breaking rank ties by position
    /// (deterministic; intra-timestamp order is the batch sort's job).
    fn root_pos(&self) -> Option<usize> {
        let len = self.heap_at.len();
        if len == 0 {
            return None;
        }
        let end = len.min(4);
        let roots = self.heap_at.get(..end)?;
        if let [a, b, c, d] = *roots {
            // Same branchless tournament as the sift's child scan.
            let (lo_at, lo) = if b < a { (b, 1) } else { (a, 0) };
            let (hi_at, hi) = if d < c { (d, 3) } else { (c, 2) };
            return Some(if hi_at < lo_at { hi } else { lo });
        }
        let mut best = 0;
        let mut i = 1;
        while i < end {
            if self.heap_at[i] < self.heap_at[best] {
                best = i;
            }
            i += 1;
        }
        Some(best)
    }

    /// The minimum timestamp currently in the heap (batch excluded).
    fn root_at(&self) -> Option<SimTime> {
        self.root_pos().map(|p| self.heap_at[p])
    }

    fn heap_push(&mut self, at: SimTime, slot: u32) {
        let pos = self.heap_at.len();
        self.heap_at.push(at);
        self.heap_slot.push(slot);
        self.sift_up(pos);
    }

    fn heap_pop_root(&mut self) -> Option<(SimTime, u32)> {
        let pos = self.root_pos()?;
        // Touch the root's payload cell now: by the time the caller takes
        // the payload, the sift below has hidden the cache miss.
        let slot = self.heap_slot[pos] as usize;
        std::hint::black_box(self.cells[slot].generation);
        self.heap_remove(pos)
    }

    /// Removes the heap entry at `pos` (an arbitrary position), restoring
    /// the heap property around the hole. Returns the removed entry.
    fn heap_remove(&mut self, pos: usize) -> Option<(SimTime, u32)> {
        let last = self.heap_at.len().checked_sub(1)?;
        self.heap_at.swap(pos, last);
        self.heap_slot.swap(pos, last);
        let at = self.heap_at.pop()?;
        let slot = self.heap_slot.pop()?;
        if pos < self.heap_at.len() {
            // The replacement came from the bottom; it may violate either
            // direction, but only one sift is ever needed. Root pops
            // (`pos < 4`, the hot path) go straight to the down-sift.
            let parent_violated = pos >= 4 && {
                let parent = pos / 4 - 1;
                self.heap_at[parent] > self.heap_at[pos]
            };
            if parent_violated {
                self.sift_up(pos);
            } else {
                self.sift_down(pos);
            }
        }
        Some((at, slot))
    }

    fn sift_up(&mut self, mut pos: usize) {
        let at = self.heap_at[pos];
        let slot = self.heap_slot[pos];
        while pos >= 4 {
            let parent = pos / 4 - 1;
            if self.heap_at[parent] <= at {
                break;
            }
            self.heap_at[pos] = self.heap_at[parent];
            let moved = self.heap_slot[parent];
            self.heap_slot[pos] = moved;
            self.slot_pos[moved as usize] = pos as u32;
            pos = parent;
        }
        self.heap_at[pos] = at;
        self.heap_slot[pos] = slot;
        self.slot_pos[slot as usize] = pos as u32;
    }

    fn sift_down(&mut self, mut pos: usize) {
        let at = self.heap_at[pos];
        let slot = self.heap_slot[pos];
        let len = self.heap_at.len();
        loop {
            let first_child = 4 * pos + 4;
            if first_child >= len {
                break;
            }
            // The sixteen grandchildren are contiguous in this layout, so
            // two touches stream the whole next level in while this
            // level's comparisons resolve. Their addresses depend only on
            // `pos`, not on which child wins, so the loads issue early —
            // a hardware prefetcher cannot follow heap jumps, but this
            // can.
            let grand = 4 * first_child + 4;
            if grand < len {
                std::hint::black_box(self.heap_at[grand]);
                let grand_mid = (grand + 8).min(len - 1);
                std::hint::black_box(self.heap_at[grand_mid]);
                std::hint::black_box(self.heap_slot[grand]);
            }
            // This level's slot group is demanded only after the rank
            // comparisons resolve; its address is known now, so start the
            // load early too.
            std::hint::black_box(self.heap_slot[first_child]);
            let fan_end = (first_child + 4).min(len);
            let Some(fan) = self.heap_at.get(first_child..fan_end) else {
                break;
            };
            let mut best = first_child;
            let mut best_at = *fan.first().unwrap_or(&at);
            if let [a, b, c, d] = *fan {
                // Pairwise tournament: three independent strict-< compares
                // (earlier index wins ties, same as the scan below) that
                // lower to conditional moves — random ranks make a
                // sequential scan's branches unpredictable.
                let second = first_child + 1;
                let third = first_child + 2;
                let fourth = first_child + 3;
                let (lo_at, lo) = if b < a { (b, second) } else { (a, first_child) };
                let (hi_at, hi) = if d < c { (d, fourth) } else { (c, third) };
                if hi_at < lo_at {
                    best = hi;
                    best_at = hi_at;
                } else {
                    best = lo;
                    best_at = lo_at;
                }
            } else {
                for (off, &child_at) in fan.iter().enumerate().skip(1) {
                    if child_at < best_at {
                        best = first_child + off;
                        best_at = child_at;
                    }
                }
            }
            if at <= best_at {
                break;
            }
            self.heap_at[pos] = best_at;
            let moved = self.heap_slot[best];
            self.heap_slot[pos] = moved;
            self.slot_pos[moved as usize] = pos as u32;
            pos = best;
        }
        self.heap_at[pos] = at;
        self.heap_slot[pos] = slot;
        self.slot_pos[slot as usize] = pos as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut EventQueue<u32>) -> Vec<(SimTime, u32)> {
        let mut out = Vec::new();
        while let Some(item) = q.pop() {
            out.push(item);
        }
        out
    }

    #[test]
    fn pops_in_time_then_key_order() {
        let mut q = EventQueue::new();
        for (i, (t, k)) in [(5u64, 0u64), (1, 2), (1, 1), (3, 0), (1, 3)].iter().enumerate() {
            q.insert(SimTime::from_secs(*t), *k, i as u32);
        }
        assert_eq!(q.len(), 5);
        let order: Vec<u32> = drain(&mut q).into_iter().map(|(_, v)| v).collect();
        assert_eq!(order, vec![2, 1, 4, 3, 0]);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn cancel_removes_eagerly_and_len_is_exact() {
        let mut q = EventQueue::new();
        let a = q.insert(SimTime::from_secs(1), 0, 0u32);
        let b = q.insert(SimTime::from_secs(2), 1, 1);
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert!(!q.cancel(a), "double cancel is a stale handle");
        assert_eq!(q.peek(), Some(SimTime::from_secs(2)));
        assert!(q.contains(b));
        assert!(!q.contains(a));
    }

    #[test]
    fn slot_reuse_goes_through_generations() {
        let mut q = EventQueue::new();
        let a = q.insert(SimTime::from_secs(1), 0, 0u32);
        assert!(q.cancel(a));
        let b = q.insert(SimTime::from_secs(1), 1, 1);
        // `b` reuses a's slot; a's handle must stay stale.
        assert!(!q.cancel(a));
        assert!(q.contains(b));
        assert_eq!(drain(&mut q), vec![(SimTime::from_secs(1), 1)]);
    }

    #[test]
    fn cancel_inside_batch_is_honored() {
        let mut q = EventQueue::new();
        let _a = q.insert(SimTime::from_secs(1), 0, 0u32);
        let b = q.insert(SimTime::from_secs(1), 1, 1);
        let _c = q.insert(SimTime::from_secs(1), 2, 2);
        // Popping the first batches the others; cancelling b afterwards
        // (as the first event's action would) must still suppress it.
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 0)));
        assert!(q.cancel(b));
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 2)));
        assert_eq!(q.pop(), None);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn reschedule_out_of_batch_and_from_heap() {
        let mut q = EventQueue::new();
        let a = q.insert(SimTime::from_secs(1), 0, 0u32);
        let b = q.insert(SimTime::from_secs(1), 1, 1);
        let c = q.insert(SimTime::from_secs(9), 2, 2);
        // Heap reschedule: move c forward.
        assert!(q.reschedule(c, SimTime::from_secs(2), 3).is_some());
        // Batch reschedule: pop hands out a and batches b, then push b to
        // t=3.
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 0)));
        assert!(q.reschedule(b, SimTime::from_secs(3), 4).is_some());
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), 1)));
        assert_eq!(q.pop(), None);
        let stale = q.reschedule(a, SimTime::from_secs(5), 5);
        assert!(stale.is_none(), "executed event cannot be rescheduled");
    }

    #[test]
    fn reschedule_within_the_batch_timestamp_is_not_double_dispatched() {
        let mut q = EventQueue::new();
        let _a = q.insert(SimTime::from_secs(1), 0, 0u32);
        let b = q.insert(SimTime::from_secs(1), 1, 1);
        let _c = q.insert(SimTime::from_secs(1), 2, 2);
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 0)));
        // b leaves the batch and re-enters the heap at the same
        // timestamp with a later key: it must fire exactly once, after c.
        assert!(q.reschedule(b, SimTime::from_secs(1), 3).is_some());
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 1)));
        assert_eq!(q.pop(), None);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn interloper_scheduled_mid_batch_fires_in_key_order() {
        let mut q = EventQueue::new();
        q.insert(SimTime::from_secs(1), 10, 0u32);
        q.insert(SimTime::from_secs(1), 20, 1);
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 0)));
        // A same-timestamp event with a smaller key than the remaining
        // batch entry (the LIFO pattern) must fire before it.
        q.insert(SimTime::from_secs(1), 15, 2);
        q.insert(SimTime::from_secs(1), 25, 3);
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 3)));
        assert_eq!(q.pop(), None);
    }
}
