//! # sim-core — deterministic discrete-event simulation kernel
//!
//! The I/O-containers reproduction runs its cluster-scale experiments on a
//! deterministic discrete-event simulator instead of a Cray XT4. This crate
//! is that simulator's kernel: a virtual clock ([`SimTime`]/[`SimDuration`]),
//! an event queue with FIFO tie-breaking ([`Sim`]), cancellable events, a
//! seeded RNG, and the online statistics ([`stats`]) the monitoring layer and
//! figure harnesses use.
//!
//! ## Example
//! ```
//! use sim_core::{Sim, SimDuration, shared};
//!
//! let mut sim = Sim::new(7);
//! let hits = shared(0u32);
//! let h = hits.clone();
//! sim.schedule_in(SimDuration::from_millis(5), move |sim| {
//!     *h.borrow_mut() += 1;
//!     let h2 = h.clone();
//!     sim.schedule_in(SimDuration::from_millis(5), move |_| *h2.borrow_mut() += 1);
//! });
//! sim.run();
//! assert_eq!(*hits.borrow(), 2);
//! assert_eq!(sim.now(), sim_core::SimTime::from_millis(10));
//! ```

#![warn(missing_docs)]

mod kernel;
mod queue;
pub mod stats;
mod time;
mod trace;
pub mod widemath;

pub use kernel::{shared, EventHook, EventId, Shared, Sim, TieBreak, DEFAULT_EVENT_LABEL};
pub use time::{SimDuration, SimTime};
pub use trace::{Divergence, Trace, TraceBucket};
