//! Online statistics used by monitoring and the benchmark harnesses.

use crate::time::{SimDuration, SimTime};

/// Welford online mean/variance accumulator.
///
/// Numerically stable single-pass algorithm; suitable for long-running
/// monitors that cannot buffer every sample.
#[derive(Clone, Debug, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Folds one sample in.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n-1 denominator), or 0 with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or +inf when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample, or -inf when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A bounded sliding window over the most recent duration samples.
///
/// Used by container monitors to compute "average latency over the last k
/// timesteps" without unbounded memory.
#[derive(Clone, Debug)]
pub struct SlidingWindow {
    capacity: usize,
    samples: std::collections::VecDeque<SimDuration>,
}

impl SlidingWindow {
    /// Creates a window retaining at most `capacity` samples.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        SlidingWindow { capacity, samples: std::collections::VecDeque::with_capacity(capacity) }
    }

    /// Pushes a sample, evicting the oldest if the window is full.
    pub fn push(&mut self, d: SimDuration) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back(d);
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of the retained samples, or zero when empty.
    pub fn mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u128 = self.samples.iter().map(|d| d.as_nanos() as u128).sum();
        SimDuration::from_nanos((total / self.samples.len() as u128) as u64)
    }

    /// Largest retained sample, or zero when empty.
    pub fn max(&self) -> SimDuration {
        self.samples.iter().copied().max().unwrap_or(SimDuration::ZERO)
    }

    /// Most recent sample, if any.
    pub fn last(&self) -> Option<SimDuration> {
        self.samples.back().copied()
    }

    /// Drops all samples (used when a container is resized so stale latencies
    /// do not pollute post-action statistics).
    pub fn clear(&mut self) {
        self.samples.clear();
    }
}

/// A power-of-two-bucketed histogram over durations, supporting cheap
/// quantile estimates for latency reporting (e.g. p99 per container).
#[derive(Clone, Debug)]
pub struct DurationHistogram {
    /// counts[k] covers durations in [2^k, 2^{k+1}) nanoseconds; bucket 0
    /// also absorbs 0.
    counts: [u64; 64],
    total: u64,
}

impl Default for DurationHistogram {
    fn default() -> Self {
        DurationHistogram { counts: [0; 64], total: 0 }
    }
}

impl DurationHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        DurationHistogram::default()
    }

    fn bucket(d: SimDuration) -> usize {
        let ns = d.as_nanos();
        if ns == 0 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        }
    }

    /// Records one duration.
    pub fn add(&mut self, d: SimDuration) {
        self.counts[Self::bucket(d)] += 1;
        self.total += 1;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// An upper bound for the q-quantile (0 < q <= 1): the top of the
    /// bucket containing the q-th sample. Returns zero when empty.
    pub fn quantile(&self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0;
        for (k, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let top = if k >= 63 { u64::MAX } else { (1u64 << (k + 1)) - 1 };
                return SimDuration::from_nanos(top);
            }
        }
        SimDuration::MAX
    }

    /// Merges another histogram in.
    pub fn merge(&mut self, other: &DurationHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

/// A `(time, value)` series recorded during a run, for figure output.
#[derive(Clone, Debug, Default)]
pub struct Series {
    name: String,
    points: Vec<(SimTime, f64)>,
}

impl Series {
    /// Creates an empty named series.
    pub fn new(name: impl Into<String>) -> Self {
        Series { name: name.into(), points: Vec::new() }
    }

    /// The series name (used as a column/legend label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a point.
    pub fn push(&mut self, at: SimTime, value: f64) {
        self.points.push((at, value));
    }

    /// The recorded points, in insertion order.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Largest recorded value, or `None` when empty.
    pub fn max_value(&self) -> Option<f64> {
        self.points.iter().map(|&(_, v)| v).fold(None, |acc, v| {
            Some(match acc {
                Some(a) if a >= v => a,
                _ => v,
            })
        })
    }

    /// Value of the final point, or `None` when empty.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &data {
            w.add(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &data {
            whole.add(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &data[..37] {
            a.add(x);
        }
        for &x in &data[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn sliding_window_evicts_oldest() {
        let mut w = SlidingWindow::new(3);
        for s in 1..=5u64 {
            w.push(SimDuration::from_secs(s));
        }
        assert_eq!(w.len(), 3);
        // Retains 3,4,5 => mean 4s.
        assert_eq!(w.mean(), SimDuration::from_secs(4));
        assert_eq!(w.max(), SimDuration::from_secs(5));
        assert_eq!(w.last(), Some(SimDuration::from_secs(5)));
    }

    #[test]
    fn empty_window_is_zero() {
        let w = SlidingWindow::new(4);
        assert!(w.is_empty());
        assert_eq!(w.mean(), SimDuration::ZERO);
        assert_eq!(w.max(), SimDuration::ZERO);
    }

    #[test]
    fn histogram_quantiles_bound_the_samples() {
        let mut h = DurationHistogram::new();
        for us in 1..=1000u64 {
            h.add(SimDuration::from_micros(us));
        }
        assert_eq!(h.count(), 1000);
        // p50 upper bound must be >= the true median and within 2x.
        let p50 = h.quantile(0.5).as_nanos();
        assert!((500_000..=1_048_575).contains(&p50), "p50 bound {p50}");
        let p99 = h.quantile(0.99).as_nanos();
        assert!(p99 >= 990_000, "p99 bound {p99}");
        // Quantiles are monotone in q.
        assert!(h.quantile(0.1) <= h.quantile(0.9));
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = DurationHistogram::new();
        let mut b = DurationHistogram::new();
        a.add(SimDuration::from_micros(1));
        b.add(SimDuration::from_millis(1));
        a.merge(&b);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = DurationHistogram::new();
        assert_eq!(h.quantile(0.99), SimDuration::ZERO);
    }

    #[test]
    fn zero_duration_lands_in_bucket_zero() {
        let mut h = DurationHistogram::new();
        h.add(SimDuration::ZERO);
        assert_eq!(h.quantile(1.0), SimDuration::from_nanos(1));
    }

    #[test]
    fn series_records_in_order() {
        let mut s = Series::new("latency");
        s.push(SimTime::from_secs(1), 1.5);
        s.push(SimTime::from_secs(2), 0.5);
        assert_eq!(s.len(), 2);
        assert_eq!(s.max_value(), Some(1.5));
        assert_eq!(s.last_value(), Some(0.5));
        assert_eq!(s.name(), "latency");
    }
}
