//! Property tests of the discrete-event kernel's core guarantees.

use proptest::prelude::*;
use sim_core::{shared, Sim, SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Events always fire in (time, insertion) order regardless of the
    /// order they were scheduled in.
    #[test]
    fn events_fire_in_nondecreasing_time(times in proptest::collection::vec(0u64..10_000, 1..100)) {
        let mut sim = Sim::new(0);
        let fired = shared(Vec::new());
        for &t in &times {
            let fired = fired.clone();
            sim.schedule_at(SimTime::from_micros(t), move |sim| {
                fired.borrow_mut().push(sim.now());
            });
        }
        sim.run();
        let fired = fired.borrow();
        prop_assert_eq!(fired.len(), times.len());
        for w in fired.windows(2) {
            prop_assert!(w[0] <= w[1], "time went backwards");
        }
        let mut expected: Vec<SimTime> = times.iter().map(|&t| SimTime::from_micros(t)).collect();
        expected.sort();
        prop_assert_eq!(fired.clone(), expected);
    }

    /// The clock never runs backwards across nested re-scheduling.
    #[test]
    fn nested_scheduling_preserves_monotonic_clock(
        delays in proptest::collection::vec(0u64..1_000, 1..50)
    ) {
        let mut sim = Sim::new(1);
        let trace = shared(Vec::new());
        fn chain(sim: &mut Sim, mut delays: Vec<u64>, trace: sim_core::Shared<Vec<SimTime>>) {
            trace.borrow_mut().push(sim.now());
            if let Some(d) = delays.pop() {
                sim.schedule_in(SimDuration::from_micros(d), move |sim| chain(sim, delays, trace));
            }
        }
        let t = trace.clone();
        sim.schedule_at(SimTime::ZERO, move |sim| chain(sim, delays, t));
        sim.run();
        let trace = trace.borrow();
        for w in trace.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// run_until never executes past the horizon, and resuming executes
    /// exactly the remainder.
    #[test]
    fn run_until_splits_execution_exactly(
        times in proptest::collection::vec(1u64..1_000, 1..60),
        horizon in 1u64..1_000
    ) {
        let mut sim = Sim::new(2);
        let count = shared(0usize);
        for &t in &times {
            let count = count.clone();
            sim.schedule_at(SimTime::from_micros(t), move |_| *count.borrow_mut() += 1);
        }
        sim.run_until(SimTime::from_micros(horizon));
        let before = *count.borrow();
        let expected_before = times.iter().filter(|&&t| t <= horizon).count();
        prop_assert_eq!(before, expected_before);
        sim.run();
        prop_assert_eq!(*count.borrow(), times.len());
    }

    /// Duration arithmetic round-trips through instants.
    #[test]
    fn time_arithmetic_round_trips(base in 0u64..1 << 40, delta in 0u64..1 << 40) {
        let t0 = SimTime::from_nanos(base);
        let d = SimDuration::from_nanos(delta);
        let t1 = t0 + d;
        prop_assert_eq!(t1.since(t0), d);
        prop_assert_eq!(t1 - d, t0);
    }

    /// Cancelled events never fire, and cancellation is stable under any
    /// subset of cancellations.
    #[test]
    fn cancellation_removes_exactly_the_cancelled(
        times in proptest::collection::vec(0u64..1_000, 1..50),
        mask in proptest::collection::vec(any::<bool>(), 1..50)
    ) {
        let mut sim = Sim::new(3);
        let fired = shared(Vec::new());
        let mut ids = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            let fired = fired.clone();
            ids.push(sim.schedule_at(SimTime::from_micros(t), move |_| {
                fired.borrow_mut().push(i);
            }));
        }
        let mut kept = Vec::new();
        for (i, id) in ids.into_iter().enumerate() {
            if mask.get(i).copied().unwrap_or(false) {
                sim.cancel(id);
            } else {
                kept.push(i);
            }
        }
        sim.run();
        let mut fired = fired.borrow().clone();
        fired.sort_unstable();
        prop_assert_eq!(fired, kept);
    }
}
