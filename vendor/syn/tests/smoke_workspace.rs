// The whole tree — sim crates, tools, vendor stubs, fixtures — must lex
// and item-parse; simlint only covers the sim-path subset.
use std::path::Path;

fn walk(dir: &Path, out: &mut Vec<std::path::PathBuf>) {
    for e in std::fs::read_dir(dir).unwrap() {
        let p = e.unwrap().path();
        if p.is_dir() {
            let n = p.file_name().unwrap().to_string_lossy().to_string();
            if n == "target" || n == ".git" { continue; }
            walk(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

#[test]
fn parses_entire_workspace() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).unwrap();
    let mut files = Vec::new();
    for top in ["src", "crates", "tools", "vendor", "tests", "examples"] {
        let d = root.join(top);
        if d.is_dir() { walk(&d, &mut files); }
    }
    assert!(files.len() > 80, "found {}", files.len());
    let mut failed = 0;
    for f in &files {
        let src = std::fs::read_to_string(f).unwrap();
        if let Err(e) = syn::parse_file(&src) {
            eprintln!("PARSE FAIL {}: {e}", f.display());
            failed += 1;
        }
    }
    assert_eq!(failed, 0, "{failed}/{} files failed to parse", files.len());
}
