//! The lexer: source text → flat spanned tokens → nested token trees.
//!
//! Comments are skipped (linters that need comment directives, like
//! simlint's `// simlint: allow(...)` escapes, re-scan the raw source —
//! the same division of labour tools built on the real `syn` use, which
//! also drops comments). Strings, chars, lifetimes, raw strings, raw
//! identifiers and numeric literals all lex as single tokens so that
//! nothing inside a literal can ever look like code to a rule.

use crate::{Delimiter, Error, Group, Ident, Literal, Punct, Span, TokenTree};

/// A flat token before tree construction.
enum Flat {
    Open(Delimiter, Span),
    Close(Delimiter, Span),
    Tree(TokenTree),
}

struct Cursor<'a> {
    b: &'a [u8],
    src: &'a str,
    i: usize,
    line: usize,
    col: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Cursor<'a> {
        Cursor { b: src.as_bytes(), src, i: 0, line: 1, col: 1 }
    }

    fn span(&self) -> Span {
        Span { line: self.line, column: self.col }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    /// Advances one byte, maintaining the line/column counters.
    fn bump(&mut self) {
        if self.b.get(self.i) == Some(&b'\n') {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.i += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }
}

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic()
}

fn is_ident_continue(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Lexes `src` into flat tokens (delimiters still unmatched).
fn lex_flat(src: &str) -> Result<Vec<Flat>, Error> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();

    // Shebang line (`#!/...` at the very start of the file).
    if src.starts_with("#!") && !src.starts_with("#![") {
        while cur.peek(0).is_some_and(|c| c != b'\n') {
            cur.bump();
        }
    }

    while let Some(c) = cur.peek(0) {
        let span = cur.span();
        match c {
            b'/' if cur.peek(1) == Some(b'/') => {
                while cur.peek(0).is_some_and(|c| c != b'\n') {
                    cur.bump();
                }
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                cur.bump_n(2);
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump_n(2);
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump_n(2);
                        }
                        (Some(_), _) => cur.bump(),
                        (None, _) => {
                            return Err(Error::new(span, "unterminated block comment"));
                        }
                    }
                }
            }
            b'"' => out.push(Flat::Tree(lex_string(&mut cur)?)),
            b'\'' => {
                // Char literal or lifetime. A lifetime is `'` + ident not
                // followed by a closing quote; everything else is a char.
                let is_lifetime = cur.peek(1).is_some_and(is_ident_start)
                    && cur.peek(1) != Some(b'\\')
                    && {
                        // Find the end of the would-be label.
                        let mut j = cur.i + 2;
                        while cur.b.get(j).copied().is_some_and(is_ident_continue) {
                            j += 1;
                        }
                        cur.b.get(j) != Some(&b'\'')
                    };
                if is_lifetime {
                    let start = cur.i;
                    cur.bump(); // the quote
                    while cur.peek(0).is_some_and(is_ident_continue) {
                        cur.bump();
                    }
                    out.push(Flat::Tree(TokenTree::Ident(Ident {
                        text: src[start..cur.i].to_string(),
                        span,
                    })));
                } else {
                    out.push(Flat::Tree(lex_char(&mut cur)?));
                }
            }
            _ if is_ident_start(c) => {
                let start = cur.i;
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump();
                }
                let text = &cur.src[start..cur.i];
                match text {
                    // Raw-string / byte-string prefixes glue to the literal.
                    "r" | "b" | "br" | "c" | "cr" if raw_or_quote_ahead(&cur) => {
                        let lit = lex_raw_or_prefixed(&mut cur, start, span)?;
                        out.push(Flat::Tree(lit));
                    }
                    // Raw identifier `r#name`.
                    "r" if cur.peek(0) == Some(b'#') && cur.peek(1).is_some_and(is_ident_start) => {
                        cur.bump(); // '#'
                        let id_start = cur.i;
                        while cur.peek(0).is_some_and(is_ident_continue) {
                            cur.bump();
                        }
                        out.push(Flat::Tree(TokenTree::Ident(Ident {
                            text: cur.src[id_start..cur.i].to_string(),
                            span,
                        })));
                    }
                    _ => out.push(Flat::Tree(TokenTree::Ident(Ident {
                        text: text.to_string(),
                        span,
                    }))),
                }
            }
            _ if c.is_ascii_digit() => {
                let start = cur.i;
                while cur
                    .peek(0)
                    .is_some_and(|c| is_ident_continue(c) || c == b'.')
                {
                    // `1..2` range: the dot belongs to the range operator.
                    if cur.peek(0) == Some(b'.') && cur.peek(1) == Some(b'.') {
                        break;
                    }
                    // `1.method()`: a dot followed by an identifier is a call.
                    if cur.peek(0) == Some(b'.') && cur.peek(1).is_some_and(is_ident_start) {
                        break;
                    }
                    cur.bump();
                }
                out.push(Flat::Tree(TokenTree::Literal(Literal {
                    text: cur.src[start..cur.i].to_string(),
                    span,
                })));
            }
            _ if c.is_ascii_whitespace() => cur.bump(),
            b'(' | b'[' | b'{' => {
                let d = match c {
                    b'(' => Delimiter::Parenthesis,
                    b'[' => Delimiter::Bracket,
                    _ => Delimiter::Brace,
                };
                out.push(Flat::Open(d, span));
                cur.bump();
            }
            b')' | b']' | b'}' => {
                let d = match c {
                    b')' => Delimiter::Parenthesis,
                    b']' => Delimiter::Bracket,
                    _ => Delimiter::Brace,
                };
                out.push(Flat::Close(d, span));
                cur.bump();
            }
            _ => {
                out.push(Flat::Tree(TokenTree::Punct(Punct { ch: c as char, span })));
                cur.bump();
            }
        }
    }
    Ok(out)
}

/// True if the cursor (just past an `r`/`b`/`br`-style prefix) sits on the
/// `#*"` tail of a raw string or directly on a quote.
fn raw_or_quote_ahead(cur: &Cursor<'_>) -> bool {
    let mut j = 0;
    while cur.peek(j) == Some(b'#') {
        j += 1;
    }
    match cur.peek(j) {
        Some(b'"') => true,
        Some(b'\'') => j == 0, // byte char literal `b'x'`
        _ => false,
    }
}

/// Lexes a (possibly raw, possibly byte) string or byte-char literal whose
/// prefix started at byte `start`.
fn lex_raw_or_prefixed(cur: &mut Cursor<'_>, start: usize, span: Span) -> Result<TokenTree, Error> {
    if cur.peek(0) == Some(b'\'') {
        // Byte char literal: reuse the char lexer, then re-span.
        let tt = lex_char(cur)?;
        if let TokenTree::Literal(mut l) = tt {
            l.text = cur.src[start..cur.i].to_string();
            l.span = span;
            return Ok(TokenTree::Literal(l));
        }
        unreachable!("lex_char returns a literal");
    }
    let mut hashes = 0usize;
    while cur.peek(0) == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    debug_assert_eq!(cur.peek(0), Some(b'"'));
    cur.bump(); // opening quote
    loop {
        match cur.peek(0) {
            None => return Err(Error::new(span, "unterminated raw string")),
            Some(b'"') => {
                cur.bump();
                let mut seen = 0usize;
                while seen < hashes && cur.peek(0) == Some(b'#') {
                    seen += 1;
                    cur.bump();
                }
                if seen == hashes {
                    return Ok(TokenTree::Literal(Literal {
                        text: cur.src[start..cur.i].to_string(),
                        span,
                    }));
                }
            }
            // Escapes are inert in raw strings; in non-raw `b"..."` strings
            // (`hashes == 0` with a `b` prefix) they must be honoured, but
            // a lone backslash before a quote only matters there:
            Some(b'\\') if hashes == 0 => {
                cur.bump();
                if cur.peek(0).is_some() {
                    cur.bump();
                }
            }
            Some(_) => cur.bump(),
        }
    }
}

/// Lexes a plain `"..."` string literal.
fn lex_string(cur: &mut Cursor<'_>) -> Result<TokenTree, Error> {
    let span = cur.span();
    let start = cur.i;
    cur.bump(); // opening quote
    loop {
        match cur.peek(0) {
            None => return Err(Error::new(span, "unterminated string literal")),
            Some(b'\\') => {
                cur.bump();
                if cur.peek(0).is_some() {
                    cur.bump();
                }
            }
            Some(b'"') => {
                cur.bump();
                return Ok(TokenTree::Literal(Literal {
                    text: cur.src[start..cur.i].to_string(),
                    span,
                }));
            }
            Some(_) => cur.bump(),
        }
    }
}

/// Lexes a `'x'` char literal (escapes included).
fn lex_char(cur: &mut Cursor<'_>) -> Result<TokenTree, Error> {
    let span = cur.span();
    let start = cur.i;
    cur.bump(); // opening quote
    loop {
        match cur.peek(0) {
            None => return Err(Error::new(span, "unterminated char literal")),
            Some(b'\\') => {
                cur.bump();
                if cur.peek(0).is_some() {
                    cur.bump();
                }
            }
            Some(b'\'') => {
                cur.bump();
                return Ok(TokenTree::Literal(Literal {
                    text: cur.src[start..cur.i].to_string(),
                    span,
                }));
            }
            Some(_) => cur.bump(),
        }
    }
}

/// Lexes `src` into a balanced token-tree stream.
pub(crate) fn lex_trees(src: &str) -> Result<Vec<TokenTree>, Error> {
    let flat = lex_flat(src)?;
    // (delimiter, open span, children) per open group.
    let mut stack: Vec<(Delimiter, Span, Vec<TokenTree>)> = Vec::new();
    let mut top: Vec<TokenTree> = Vec::new();
    for f in flat {
        match f {
            Flat::Tree(t) => match stack.last_mut() {
                Some((_, _, children)) => children.push(t),
                None => top.push(t),
            },
            Flat::Open(d, span) => stack.push((d, span, Vec::new())),
            Flat::Close(d, span) => {
                let Some((open_d, open_span, children)) = stack.pop() else {
                    return Err(Error::new(span, format!("unmatched closing `{}`", d.close())));
                };
                if open_d != d {
                    return Err(Error::new(
                        open_span,
                        format!("`{}` closed by `{}`", open_d.open(), d.close()),
                    ));
                }
                let g = TokenTree::Group(Group {
                    delimiter: d,
                    stream: children,
                    span: open_span,
                });
                match stack.last_mut() {
                    Some((_, _, parent)) => parent.push(g),
                    None => top.push(g),
                }
            }
        }
    }
    if let Some((d, span, _)) = stack.pop() {
        return Err(Error::new(span, format!("unclosed `{}`", d.open())));
    }
    Ok(top)
}
