//! Item-level parsing over the lexer's token trees.
//!
//! The grammar here is deliberately shallow: it recovers the item
//! skeleton (use/fn/mod/impl/trait, with attributes and bodies) and
//! leaves everything else as token runs. Where full Rust would need
//! lookahead the parser cannot provide (const-generic braces in return
//! types), it favours the common case and the workspace's own idioms.

use crate::{
    Attribute, Delimiter, Error, Item, ItemFn, ItemImpl, ItemMod, ItemUse, Span, TokenTree,
    UseBinding,
};

/// Parses a token-tree stream into items.
pub(crate) fn parse_items(trees: Vec<TokenTree>) -> Result<Vec<Item>, Error> {
    let mut p = Parser { toks: trees, i: 0 };
    p.items()
}

struct Parser {
    toks: Vec<TokenTree>,
    i: usize,
}

impl Parser {
    fn peek(&self, ahead: usize) -> Option<&TokenTree> {
        self.toks.get(self.i + ahead)
    }

    fn peek_ident(&self, ahead: usize) -> Option<&str> {
        self.peek(ahead).and_then(TokenTree::ident)
    }

    fn peek_punct(&self, ahead: usize) -> Option<char> {
        self.peek(ahead).and_then(TokenTree::punct)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.i >= self.toks.len()
    }

    fn items(&mut self) -> Result<Vec<Item>, Error> {
        let mut items = Vec::new();
        while !self.at_end() {
            if let Some(item) = self.item()? {
                items.push(item);
            }
        }
        Ok(items)
    }

    /// Parses one item; returns `None` for skipped inner attributes and
    /// stray separators.
    fn item(&mut self) -> Result<Option<Item>, Error> {
        // Inner attribute `#![...]`: file/module metadata, skipped.
        if self.peek_punct(0) == Some('#') && self.peek_punct(1) == Some('!') {
            self.bump();
            self.bump();
            self.bump(); // the bracket group
            return Ok(None);
        }
        // Stray semicolon.
        if self.peek_punct(0) == Some(';') {
            self.bump();
            return Ok(None);
        }

        let attrs = self.attributes();
        let start = self.i;

        // Visibility: `pub` with optional `(crate)` / `(super)` / `(in …)`.
        if self.peek_ident(0) == Some("pub") {
            self.bump();
            if self
                .peek(0)
                .and_then(TokenTree::group)
                .is_some_and(|g| g.delimiter == Delimiter::Parenthesis)
            {
                self.bump();
            }
        }

        // Qualifier run, then the deciding keyword.
        let mut guard = 0usize;
        loop {
            guard += 1;
            if guard > 16 {
                break; // pathological qualifier run; fall through to Other
            }
            match self.peek_ident(0) {
                Some("fn") => {
                    self.bump();
                    return self.item_fn(attrs).map(Some);
                }
                Some("mod") => {
                    self.bump();
                    return self.item_mod(attrs).map(Some);
                }
                Some("impl") | Some("trait") => {
                    self.bump();
                    return self.item_impl(attrs).map(Some);
                }
                Some("use") => {
                    self.bump();
                    return self.item_use().map(Some);
                }
                Some("default") | Some("unsafe") | Some("async") => {
                    self.bump();
                }
                Some("const") => {
                    // `const fn` (qualifier) vs `const NAME: …` (item).
                    if matches!(
                        self.peek_ident(1),
                        Some("fn") | Some("unsafe") | Some("extern") | Some("async")
                    ) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                Some("extern") => {
                    // `extern "C" fn` is a qualifier; `extern crate` and
                    // `extern "C" { … }` blocks are Other items.
                    if matches!(self.peek(1), Some(TokenTree::Literal(_)))
                        && matches!(self.peek_ident(2), Some("fn"))
                    {
                        self.bump();
                        self.bump();
                    } else if matches!(self.peek_ident(1), Some("fn")) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }

        self.item_other(attrs, start)
    }

    /// Collects a run of outer attributes.
    fn attributes(&mut self) -> Vec<Attribute> {
        let mut attrs = Vec::new();
        while self.peek_punct(0) == Some('#') {
            let span = self.peek(0).map(|t| t.span()).unwrap_or_else(Span::start);
            let Some(TokenTree::Group(g)) = self.peek(1) else { break };
            if g.delimiter != Delimiter::Bracket {
                break;
            }
            let tokens = g.stream.clone();
            self.bump();
            self.bump();
            attrs.push(Attribute { tokens, span });
        }
        attrs
    }

    fn item_fn(&mut self, attrs: Vec<Attribute>) -> Result<Item, Error> {
        let ident = match self.bump() {
            Some(TokenTree::Ident(i)) => i,
            other => {
                let span = other.map(|t| t.span()).unwrap_or_else(Span::start);
                return Err(Error::new(span, "expected function name after `fn`"));
            }
        };
        let mut signature = Vec::new();
        let mut body = None;
        while let Some(t) = self.peek(0) {
            match t {
                TokenTree::Group(g) if g.delimiter == Delimiter::Brace => {
                    body = Some(g.clone());
                    self.bump();
                    break;
                }
                TokenTree::Punct(p) if p.ch == ';' => {
                    self.bump();
                    break;
                }
                _ => signature.push(self.bump().expect("peeked token")),
            }
        }
        Ok(Item::Fn(ItemFn { attrs, ident, signature, body }))
    }

    fn item_mod(&mut self, attrs: Vec<Attribute>) -> Result<Item, Error> {
        let ident = match self.bump() {
            Some(TokenTree::Ident(i)) => i,
            other => {
                let span = other.map(|t| t.span()).unwrap_or_else(Span::start);
                return Err(Error::new(span, "expected module name after `mod`"));
            }
        };
        let content = match self.peek(0) {
            Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Brace => {
                let inner = g.stream.clone();
                self.bump();
                Some(parse_items(inner)?)
            }
            _ => {
                // `mod name;` — consume the semicolon if present.
                if self.peek_punct(0) == Some(';') {
                    self.bump();
                }
                None
            }
        };
        Ok(Item::Mod(ItemMod { attrs, ident, content }))
    }

    fn item_impl(&mut self, attrs: Vec<Attribute>) -> Result<Item, Error> {
        let mut header = Vec::new();
        let mut items = Vec::new();
        while let Some(t) = self.peek(0) {
            match t {
                TokenTree::Group(g) if g.delimiter == Delimiter::Brace => {
                    let inner = g.stream.clone();
                    self.bump();
                    items = parse_items(inner)?;
                    break;
                }
                TokenTree::Punct(p) if p.ch == ';' => {
                    self.bump();
                    break;
                }
                _ => header.push(self.bump().expect("peeked token")),
            }
        }
        Ok(Item::Impl(ItemImpl { attrs, header, items }))
    }

    fn item_use(&mut self) -> Result<Item, Error> {
        let mut toks = Vec::new();
        while let Some(t) = self.peek(0) {
            if t.punct() == Some(';') {
                self.bump();
                break;
            }
            toks.push(self.bump().expect("peeked token"));
        }
        let mut bindings = Vec::new();
        use_tree(&toks, &[], &mut bindings);
        Ok(Item::Use(ItemUse { bindings }))
    }

    /// Everything else: re-wind to `start` (visibility included) and
    /// consume one item's worth of tokens.
    fn item_other(&mut self, attrs: Vec<Attribute>, start: usize) -> Result<Option<Item>, Error> {
        self.i = start;
        let mut toks = Vec::new();
        // `struct`/`enum`/`union`/`extern`-block items and brace-form
        // macro invocations (`thread_local! { … }`) end at their first
        // top-level brace group (or at a `;` for tuple/unit structs);
        // `static`/`const`/`type`/`extern crate` items end at `;` only —
        // a brace group there is an initializer expression.
        let brace_terminates = {
            let mut j = 0;
            let mut decided = false;
            while let Some(name) = self.peek_ident(j) {
                match name {
                    "pub" => {
                        j += 1;
                        // Restricted visibility: `pub(crate)` / `pub(super)`
                        // / `pub(in …)` carries a parenthesis group.
                        if self
                            .peek(j)
                            .and_then(TokenTree::group)
                            .is_some_and(|g| g.delimiter == Delimiter::Parenthesis)
                        {
                            j += 1;
                        }
                    }
                    "default" | "unsafe" | "async" => j += 1,
                    "struct" | "enum" | "union" | "extern" | "macro_rules" | "macro" => {
                        decided = true;
                        break;
                    }
                    "static" | "const" | "type" => break,
                    // A macro invocation: `name! …`.
                    _ if self.peek_punct(j + 1) == Some('!') => {
                        decided = true;
                        break;
                    }
                    _ => break,
                }
                if j > 8 {
                    break;
                }
            }
            decided
        };
        while let Some(t) = self.peek(0) {
            match t {
                TokenTree::Punct(p) if p.ch == ';' => {
                    toks.push(self.bump().expect("peeked token"));
                    break;
                }
                TokenTree::Group(g) if g.delimiter == Delimiter::Brace && brace_terminates => {
                    toks.push(self.bump().expect("peeked token"));
                    // `macro_rules! m { … }` needs no `;`; a trailing one
                    // after bracket/paren macro definitions is consumed by
                    // the stray-semicolon path.
                    break;
                }
                _ => toks.push(self.bump().expect("peeked token")),
            }
        }
        if toks.is_empty() {
            // Nothing consumable (lone attribute at end of stream).
            return Ok(None);
        }
        Ok(Some(Item::Other(attrs, toks)))
    }
}

/// Recursively flattens a use-tree token run into bindings.
fn use_tree(toks: &[TokenTree], prefix: &[String], out: &mut Vec<UseBinding>) {
    let mut path: Vec<String> = prefix.to_vec();
    let mut last_span = Span::start();
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Ident(id) if id.text == "as" => {
                // Alias: the next ident names the binding.
                if let Some(TokenTree::Ident(alias)) = toks.get(i + 1) {
                    out.push(UseBinding {
                        name: alias.text.clone(),
                        path: path.clone(),
                        span: alias.span,
                    });
                }
                return;
            }
            TokenTree::Ident(id) if id.text == "self" => {
                // `{self, …}` binds the prefix's last segment.
                i += 1;
            }
            TokenTree::Ident(id) => {
                path.push(id.text.clone());
                last_span = id.span;
                i += 1;
            }
            TokenTree::Punct(p) if p.ch == '*' => {
                out.push(UseBinding { name: "*".to_string(), path: path.clone(), span: p.span });
                return;
            }
            TokenTree::Group(g) if g.delimiter == Delimiter::Brace => {
                // Split the group on top-level commas; recurse per branch.
                let mut branch: Vec<TokenTree> = Vec::new();
                for t in &g.stream {
                    if t.punct() == Some(',') {
                        if !branch.is_empty() {
                            use_tree(&branch, &path, out);
                            branch.clear();
                        } else {
                            // `{self, …}`: a bare `self` branch re-binds
                            // the prefix itself.
                            bind_tail(&path, g.span, out);
                        }
                    } else if t.ident() == Some("self") && branch.is_empty() {
                        bind_tail(&path, t.span(), out);
                    } else {
                        branch.push(t.clone());
                    }
                }
                if !branch.is_empty() {
                    use_tree(&branch, &path, out);
                }
                return;
            }
            _ => i += 1, // `::` separators, commas at this level
        }
    }
    if path.len() > prefix.len() {
        out.push(UseBinding {
            name: path.last().cloned().unwrap_or_default(),
            path,
            span: last_span,
        });
    }
}

/// Binds the prefix path's own tail segment (the `self` in `a::b::{self}`).
fn bind_tail(path: &[String], span: Span, out: &mut Vec<UseBinding>) {
    if let Some(last) = path.last() {
        out.push(UseBinding { name: last.clone(), path: path.to_vec(), span });
    }
}

