//! Offline stand-in for the `syn` crate.
//!
//! The real `syn` is unavailable in this build environment (no registry
//! access), so — like every other `vendor/` crate — this implements
//! exactly the API subset the workspace uses: the `simlint` determinism
//! linter needs a span-preserving lexer, `proc-macro2`-style token trees,
//! and *item-level* structure (use declarations with alias resolution
//! hooks, functions with attributes and bodies, modules, impl/trait
//! blocks), not full expression grammar. Expression-level analysis in
//! simlint works structurally over the token trees, which is exactly how
//! token-level rules in `syn`-based linters treat macro bodies.
//!
//! Divergences from the real crate, by design:
//!
//! * Token trees carry [`Span`]s with resolved 1-based line/column (the
//!   real `syn` needs `proc-macro2`'s span-locations feature for this).
//! * [`Item`] is a reduced enum: `Use`, `Fn`, `Mod`, `Impl` (also used
//!   for `trait` blocks — both are "containers of functions" to a
//!   linter), and `Other` for everything a linter only needs to scan
//!   token-linearly (structs, enums, statics, consts, macros).
//! * Comments are dropped, as in the real `syn`; tools that need comment
//!   directives re-scan the raw source.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lexer;
mod parser;

use std::fmt;

/// A resolved source position: 1-based line and column.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Span {
    /// 1-based line number.
    pub line: usize,
    /// 1-based byte column within the line.
    pub column: usize,
}

impl Span {
    /// A span pointing at the start of the file (used for synthesized
    /// nodes).
    pub fn start() -> Span {
        Span { line: 1, column: 1 }
    }
}

/// Parse failure: the offending position and a message.
#[derive(Clone, Debug)]
pub struct Error {
    span: Span,
    message: String,
}

impl Error {
    /// Creates an error at `span`.
    pub fn new(span: Span, message: impl Into<String>) -> Error {
        Error { span, message: message.into() }
    }

    /// Where the parse failed.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.span.line, self.span.column, self.message)
    }
}

impl std::error::Error for Error {}

/// The delimiter of a [`Group`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Delimiter {
    /// `( ... )`
    Parenthesis,
    /// `{ ... }`
    Brace,
    /// `[ ... ]`
    Bracket,
}

impl Delimiter {
    /// The opening character.
    pub fn open(self) -> char {
        match self {
            Delimiter::Parenthesis => '(',
            Delimiter::Brace => '{',
            Delimiter::Bracket => '[',
        }
    }

    /// The closing character.
    pub fn close(self) -> char {
        match self {
            Delimiter::Parenthesis => ')',
            Delimiter::Brace => '}',
            Delimiter::Bracket => ']',
        }
    }
}

/// A delimited token group.
#[derive(Clone, Debug)]
pub struct Group {
    /// Which delimiter pair wraps the group.
    pub delimiter: Delimiter,
    /// The tokens inside the delimiters.
    pub stream: Vec<TokenTree>,
    /// The opening delimiter's position.
    pub span: Span,
}

/// An identifier (keywords and lifetimes included — a linter treats them
/// uniformly).
#[derive(Clone, Debug)]
pub struct Ident {
    /// The identifier text (without any `r#` prefix).
    pub text: String,
    /// Its position.
    pub span: Span,
}

/// A single punctuation character.
#[derive(Clone, Debug)]
pub struct Punct {
    /// The character.
    pub ch: char,
    /// Its position.
    pub span: Span,
}

/// A literal: number, string, raw string, char, or byte variant thereof,
/// kept as raw source text.
#[derive(Clone, Debug)]
pub struct Literal {
    /// The literal's raw source text.
    pub text: String,
    /// Its position.
    pub span: Span,
}

/// One node of a token stream.
#[derive(Clone, Debug)]
pub enum TokenTree {
    /// A delimited group.
    Group(Group),
    /// An identifier.
    Ident(Ident),
    /// A punctuation character.
    Punct(Punct),
    /// A literal.
    Literal(Literal),
}

impl TokenTree {
    /// The node's position.
    pub fn span(&self) -> Span {
        match self {
            TokenTree::Group(g) => g.span,
            TokenTree::Ident(i) => i.span,
            TokenTree::Punct(p) => p.span,
            TokenTree::Literal(l) => l.span,
        }
    }

    /// The identifier text, if this is an [`Ident`].
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenTree::Ident(i) => Some(&i.text),
            _ => None,
        }
    }

    /// The punctuation char, if this is a [`Punct`].
    pub fn punct(&self) -> Option<char> {
        match self {
            TokenTree::Punct(p) => Some(p.ch),
            _ => None,
        }
    }

    /// The group, if this is a [`Group`].
    pub fn group(&self) -> Option<&Group> {
        match self {
            TokenTree::Group(g) => Some(g),
            _ => None,
        }
    }
}

/// An outer attribute (`#[...]`), kept as its inner token stream.
#[derive(Clone, Debug)]
pub struct Attribute {
    /// The tokens between the brackets of `#[...]`.
    pub tokens: Vec<TokenTree>,
    /// The `#`'s position.
    pub span: Span,
}

impl Attribute {
    /// The attribute's leading path identifier (`test` in `#[test]`,
    /// `cfg` in `#[cfg(test)]`), if any.
    pub fn path_ident(&self) -> Option<&str> {
        self.tokens.first().and_then(TokenTree::ident)
    }

    /// True for `#[test]` (and `#[tokio::test]`-shaped attributes ending
    /// in `test`).
    pub fn is_test(&self) -> bool {
        self.tokens.iter().rev().find_map(TokenTree::ident) == Some("test")
            || self.path_ident() == Some("test")
    }

    /// True for `#[cfg(test)]` and `#[cfg(any(test, ...))]`-shaped
    /// attributes: a `cfg` whose argument list mentions `test`.
    pub fn is_cfg_test(&self) -> bool {
        if self.path_ident() != Some("cfg") {
            return false;
        }
        fn mentions_test(stream: &[TokenTree]) -> bool {
            stream.iter().any(|t| match t {
                TokenTree::Ident(i) => i.text == "test",
                TokenTree::Group(g) => mentions_test(&g.stream),
                _ => false,
            })
        }
        self.tokens
            .iter()
            .filter_map(TokenTree::group)
            .any(|g| mentions_test(&g.stream))
    }
}

/// One name introduced by a `use` declaration.
#[derive(Clone, Debug)]
pub struct UseBinding {
    /// The local name the declaration brings into scope (the alias after
    /// `as`, or the path's last segment).
    pub name: String,
    /// The full path segments, root first (`["std", "collections",
    /// "HashMap"]`).
    pub path: Vec<String>,
    /// Position of the binding's final segment.
    pub span: Span,
}

/// A `use` declaration, flattened to the bindings it introduces.
#[derive(Clone, Debug)]
pub struct ItemUse {
    /// Every name the declaration brings into scope. Glob imports
    /// contribute a binding named `*`.
    pub bindings: Vec<UseBinding>,
}

/// A function item (free, associated, or trait-default).
#[derive(Clone, Debug)]
pub struct ItemFn {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// The function's name.
    pub ident: Ident,
    /// Signature tokens between the name and the body (generics,
    /// parameter list group, return type, where clause).
    pub signature: Vec<TokenTree>,
    /// The body block, or `None` for bodyless declarations (trait
    /// methods, extern fns).
    pub body: Option<Group>,
}

impl ItemFn {
    /// The parameter-list group of the signature, if present.
    pub fn params(&self) -> Option<&Group> {
        self.signature
            .iter()
            .filter_map(TokenTree::group)
            .find(|g| g.delimiter == Delimiter::Parenthesis)
    }
}

/// An inline or out-of-line module.
#[derive(Clone, Debug)]
pub struct ItemMod {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// The module's name.
    pub ident: Ident,
    /// Items of an inline `mod name { ... }`; `None` for `mod name;`.
    pub content: Option<Vec<Item>>,
}

/// An `impl` or `trait` block: to a linter, a container of functions.
#[derive(Clone, Debug)]
pub struct ItemImpl {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// Header tokens between the keyword and the body (generics, the
    /// type, trait path, where clause).
    pub header: Vec<TokenTree>,
    /// The block's items.
    pub items: Vec<Item>,
}

/// A parsed item.
#[derive(Clone, Debug)]
pub enum Item {
    /// A `use` declaration.
    Use(ItemUse),
    /// A function.
    Fn(ItemFn),
    /// A module.
    Mod(ItemMod),
    /// An `impl` or `trait` block.
    Impl(ItemImpl),
    /// Anything else (structs, enums, consts, statics, type aliases,
    /// macro invocations/definitions), kept as attributes plus the raw
    /// token run for token-linear scanning.
    Other(Vec<Attribute>, Vec<TokenTree>),
}

/// A parsed source file.
#[derive(Clone, Debug)]
pub struct File {
    /// The file's top-level items.
    pub items: Vec<Item>,
}

/// Parses a full source file.
pub fn parse_file(src: &str) -> Result<File, Error> {
    let trees = lexer::lex_trees(src)?;
    let items = parser::parse_items(trees)?;
    Ok(File { items })
}

/// Lexes a source file to its raw token-tree stream without item
/// structure (useful for fixtures and token-linear passes).
pub fn parse_tokens(src: &str) -> Result<Vec<TokenTree>, Error> {
    lexer::lex_trees(src)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> File {
        parse_file(src).expect("parses")
    }

    #[test]
    fn spans_are_line_and_column() {
        let f = parse("fn main() {\n    let x = 1;\n}\n");
        let Item::Fn(func) = &f.items[0] else { panic!("fn item") };
        assert_eq!(func.ident.text, "main");
        assert_eq!(func.ident.span, Span { line: 1, column: 4 });
        let body = func.body.as_ref().unwrap();
        let x = body.stream.iter().find(|t| t.ident() == Some("x")).unwrap();
        assert_eq!(x.span(), Span { line: 2, column: 9 });
    }

    #[test]
    fn use_bindings_flatten_groups_and_aliases() {
        let f = parse("use std::collections::{HashMap as Map, HashSet};\nuse std::time::Instant;\n");
        let Item::Use(u) = &f.items[0] else { panic!("use item") };
        assert_eq!(u.bindings.len(), 2);
        assert_eq!(u.bindings[0].name, "Map");
        assert_eq!(u.bindings[0].path, ["std", "collections", "HashMap"]);
        assert_eq!(u.bindings[1].name, "HashSet");
        let Item::Use(u) = &f.items[1] else { panic!("use item") };
        assert_eq!(u.bindings[0].name, "Instant");
        assert_eq!(u.bindings[0].path, ["std", "time", "Instant"]);
    }

    #[test]
    fn impl_blocks_contain_fns_with_attrs() {
        let src = "impl Foo {\n    #[inline]\n    pub fn bar(&self) -> u32 { 7 }\n    fn baz() {}\n}";
        let f = parse(src);
        let Item::Impl(im) = &f.items[0] else { panic!("impl item") };
        assert_eq!(im.items.len(), 2);
        let Item::Fn(bar) = &im.items[0] else { panic!("fn") };
        assert_eq!(bar.ident.text, "bar");
        assert_eq!(bar.attrs.len(), 1);
        assert_eq!(bar.attrs[0].path_ident(), Some("inline"));
        assert!(bar.params().is_some());
    }

    #[test]
    fn cfg_test_mod_is_detected() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert!(true); }\n}";
        let f = parse(src);
        let Item::Mod(m) = &f.items[0] else { panic!("mod item") };
        assert!(m.attrs[0].is_cfg_test());
        let Some(items) = &m.content else { panic!("inline mod") };
        let Item::Fn(t) = &items[0] else { panic!("fn") };
        assert!(t.attrs[0].is_test());
    }

    #[test]
    fn strings_comments_and_lifetimes_do_not_confuse_the_lexer() {
        let src = "fn f<'a>(x: &'a str) -> &'a str {\n    // Instant::now() in comment\n    let _ = \"Instant::now()\";\n    let _ = r#\"nested \"quotes\" here\"#;\n    let _c = 'x';\n    let _e = '\\n';\n    x\n}";
        let f = parse(src);
        let Item::Fn(func) = &f.items[0] else { panic!("fn") };
        let body = func.body.as_ref().unwrap();
        // No `Instant` identifier token may exist anywhere in the body.
        fn has_ident(stream: &[TokenTree], name: &str) -> bool {
            stream.iter().any(|t| match t {
                TokenTree::Ident(i) => i.text == name,
                TokenTree::Group(g) => has_ident(&g.stream, name),
                _ => false,
            })
        }
        assert!(!has_ident(&body.stream, "Instant"));
    }

    #[test]
    fn trait_blocks_parse_default_and_declared_methods() {
        let src = "pub trait Clock: Send {\n    fn now(&self) -> u64;\n    fn tick(&self) -> u64 { self.now() + 1 }\n}";
        let f = parse(src);
        let Item::Impl(tr) = &f.items[0] else { panic!("trait as impl container") };
        assert_eq!(tr.items.len(), 2);
        let Item::Fn(now) = &tr.items[0] else { panic!("fn") };
        assert!(now.body.is_none());
        let Item::Fn(tick) = &tr.items[1] else { panic!("fn") };
        assert!(tick.body.is_some());
    }

    #[test]
    fn unbalanced_delimiters_error_with_span() {
        let e = parse_file("fn f() {\n    let x = (1;\n}").unwrap_err();
        assert_eq!(e.span().line, 2);
    }

    #[test]
    fn other_items_keep_their_tokens() {
        let src = "pub struct S { pub field: HashMap<u32, u32> }\nstatic N: usize = 4;";
        let f = parse(src);
        assert_eq!(f.items.len(), 2);
        let Item::Other(_, toks) = &f.items[0] else { panic!("struct as Other") };
        assert!(toks.iter().any(|t| t.ident() == Some("struct")));
    }

    #[test]
    fn nested_mods_nest_items() {
        let src = "mod outer {\n    mod inner {\n        fn leaf() {}\n    }\n}";
        let f = parse(src);
        let Item::Mod(outer) = &f.items[0] else { panic!("mod") };
        let Item::Mod(inner) = &outer.content.as_ref().unwrap()[0] else { panic!("mod") };
        let Item::Fn(leaf) = &inner.content.as_ref().unwrap()[0] else { panic!("fn") };
        assert_eq!(leaf.ident.text, "leaf");
    }

    #[test]
    fn const_generic_fn_signature_finds_the_body() {
        let src = "fn f<const N: usize>(x: [u32; N]) -> u32 { x[0] }";
        let f = parse(src);
        let Item::Fn(func) = &f.items[0] else { panic!("fn") };
        assert!(func.body.is_some());
    }

    #[test]
    fn raw_identifiers_lex_as_plain_idents() {
        let f = parse("fn f() { let r#type = 1; let _ = r#type; }");
        let Item::Fn(func) = &f.items[0] else { panic!("fn") };
        let body = func.body.as_ref().unwrap();
        assert!(body.stream.iter().any(|t| t.ident() == Some("type")));
    }

    #[test]
    fn restricted_visibility_struct_terminates_at_its_brace() {
        // `pub(crate) struct … { … }` must end at its body brace like any
        // other struct — not scan ahead for a `;` and swallow the items
        // that follow (which would hide their fns from per-fn analyses).
        let src = "pub(crate) struct Q<T> {\n    slots: Vec<T>,\n}\n\
                   impl<T> Q<T> {\n    pub(crate) fn new() -> Q<T> { Q { slots: Vec::new() } }\n}\n";
        let f = parse(src);
        assert_eq!(f.items.len(), 2);
        let Item::Other(_, toks) = &f.items[0] else { panic!("struct as Other") };
        assert!(toks.iter().any(|t| t.ident() == Some("struct")));
        let Item::Impl(im) = &f.items[1] else { panic!("impl item") };
        let Item::Fn(new) = &im.items[0] else { panic!("fn") };
        assert_eq!(new.ident.text, "new");
        assert!(new.body.is_some());
    }
}
