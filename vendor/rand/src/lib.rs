//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the small slice of the rand 0.8 API the workspace actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`] helpers
//! `gen`, `gen_range`, and `gen_bool`. The generator is xoshiro256++ seeded
//! through SplitMix64 — deterministic, high quality, and `no_std`-clean. It
//! does **not** reproduce the upstream `StdRng` stream; everything in this
//! repository that depends on randomness derives expectations from the same
//! seeded stream, so only determinism matters, not the exact values.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step, used for seed expansion.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}
impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the rand convention).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform integer in `[0, bound)` by rejection from the top of the word,
/// avoiding modulo bias.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result =
                self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let w = r.gen_range(5usize..9);
            assert!((5..9).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(5);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
