//! Offline stand-in for the `loom` crate.
//!
//! The real `loom` exhaustively enumerates thread interleavings of a
//! concurrent model. That engine is unavailable offline, so — per the
//! workspace's `vendor/` convention — this crate implements the API
//! subset the datatap channel's model suite uses, with the strongest
//! semantics std primitives can offer: [`model`] runs the closure under
//! **many seeded schedules**, and the lock/wait primitives inject
//! seed-derived preemption points (spin-yields) before every acquisition
//! and wake, so each iteration explores a different interleaving of the
//! lock-order graph. It is a bounded stress search, not an exhaustive
//! proof — findings are real, passes are probabilistic — which the CI
//! job's documentation states explicitly.
//!
//! API kept source-compatible with the test-side subset of `loom`:
//! `loom::model(|| …)`, `loom::thread::{spawn, yield_now}`, and
//! `loom::sync::{Arc, Mutex, Condvar}` — with the mutex/condvar calling
//! convention matching the vendored `parking_lot` (non-poisoning
//! `lock()`, waits by `&mut MutexGuard`), since that is what the channel
//! swaps them for under `--cfg loom`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};

/// Iterations (distinct preemption seeds) one [`model`] call explores.
const MODEL_ITERATIONS: u64 = 64;

/// The current iteration's preemption seed; 0 outside a model run.
static SCHEDULE_SEED: AtomicU64 = AtomicU64::new(0);
/// Global preemption-point counter, mixed with the seed per decision.
static PREEMPT_CLOCK: AtomicU64 = AtomicU64::new(0);

/// Runs `f` repeatedly under distinct seeded preemption schedules.
///
/// Panics propagate from the first failing iteration, so a protocol
/// violation fails the surrounding `#[test]` exactly as under real loom.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    for seed in 1..=MODEL_ITERATIONS {
        SCHEDULE_SEED.store(seed, Ordering::SeqCst);
        PREEMPT_CLOCK.store(0, Ordering::SeqCst);
        f();
    }
    SCHEDULE_SEED.store(0, Ordering::SeqCst);
}

/// Injects one preemption point: with a seed-derived decision, yields the
/// OS scheduler (possibly repeatedly) to perturb the interleaving.
fn preempt() {
    let seed = SCHEDULE_SEED.load(Ordering::Relaxed);
    if seed == 0 {
        return; // outside a model run: primitives behave plainly
    }
    let t = PREEMPT_CLOCK.fetch_add(1, Ordering::Relaxed);
    // splitmix64 over (seed, tick): cheap, stateless, well-distributed.
    let mut z = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(t);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    match z % 8 {
        0 => std::thread::yield_now(),
        1 => {
            for _ in 0..(z >> 32) % 3 + 1 {
                std::thread::yield_now();
            }
        }
        2 => std::hint::spin_loop(),
        _ => {}
    }
}

/// Thread spawning with preemption points at spawn and start.
pub mod thread {
    /// Re-export of the std join handle; `loom`'s has the same surface.
    pub use std::thread::JoinHandle;

    /// Spawns a thread, injecting preemption points around the handoff.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        super::preempt();
        std::thread::spawn(move || {
            super::preempt();
            f()
        })
    }

    /// Yields the scheduler (a manual preemption point in models).
    pub fn yield_now() {
        std::thread::yield_now();
    }
}

/// Synchronization primitives with preemption injection.
pub mod sync {
    use std::sync::{self, PoisonError};
    use std::time::Duration;

    pub use std::sync::Arc;

    /// Atomics module, mirroring `loom::sync::atomic`.
    pub mod atomic {
        pub use std::sync::atomic::*;
    }

    /// Non-poisoning mutex with a preemption point before each
    /// acquisition (the schedule decision loom explores).
    #[derive(Debug, Default)]
    pub struct Mutex<T> {
        inner: sync::Mutex<T>,
    }

    /// RAII guard for [`Mutex`]; releases the lock on drop.
    pub struct MutexGuard<'a, T> {
        // `Option` so the condvar can hand the inner guard to std's
        // by-value wait calls and put it back (same trick as the
        // vendored parking_lot).
        inner: Option<sync::MutexGuard<'a, T>>,
    }

    impl<T> Mutex<T> {
        /// Creates a mutex holding `value`.
        pub fn new(value: T) -> Mutex<T> {
            Mutex { inner: sync::Mutex::new(value) }
        }

        /// Acquires the lock after a preemption point. Never poisons.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            super::preempt();
            MutexGuard {
                inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
            }
        }
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard active")
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard active")
        }
    }

    /// Result of a timed condvar wait.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct WaitTimeoutResult {
        timed_out: bool,
    }

    impl WaitTimeoutResult {
        /// Whether the wait ended by timeout rather than notification.
        pub fn timed_out(&self) -> bool {
            self.timed_out
        }
    }

    /// Condition variable with the `&mut guard` calling convention and
    /// preemption points on wake paths.
    #[derive(Debug, Default)]
    pub struct Condvar {
        inner: sync::Condvar,
    }

    impl Condvar {
        /// Creates a new condition variable.
        pub fn new() -> Condvar {
            Condvar { inner: sync::Condvar::new() }
        }

        /// Blocks until notified, releasing the guard's lock while
        /// waiting.
        pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
            let g = guard.inner.take().expect("guard active");
            let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
            super::preempt();
            guard.inner = Some(g);
        }

        /// Blocks until notified or `timeout` elapses.
        pub fn wait_for<T>(
            &self,
            guard: &mut MutexGuard<'_, T>,
            timeout: Duration,
        ) -> WaitTimeoutResult {
            let g = guard.inner.take().expect("guard active");
            let (g, res) = self
                .inner
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            super::preempt();
            guard.inner = Some(g);
            WaitTimeoutResult { timed_out: res.timed_out() }
        }

        /// Wakes one waiter after a preemption point.
        pub fn notify_one(&self) {
            super::preempt();
            self.inner.notify_one();
        }

        /// Wakes all waiters after a preemption point.
        pub fn notify_all(&self) {
            super::preempt();
            self.inner.notify_all();
        }
    }
}

/// Manual preemption hooks for models that want explicit exploration
/// points.
pub mod hint {
    /// A seed-driven preemption point.
    pub fn preempt() {
        super::preempt();
    }
}

#[cfg(test)]
mod tests {
    use super::sync::{Arc, Condvar, Mutex};

    #[test]
    fn model_runs_many_iterations() {
        let count = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let c = count.clone();
        super::model(move || {
            c.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        });
        assert_eq!(count.load(std::sync::atomic::Ordering::SeqCst), super::MODEL_ITERATIONS);
    }

    #[test]
    fn mutex_and_condvar_roundtrip() {
        super::model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = pair.clone();
            let t = super::thread::spawn(move || {
                let (m, cv) = &*p2;
                let mut done = m.lock();
                *done = true;
                cv.notify_all();
            });
            let (m, cv) = &*pair;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
            drop(done);
            t.join().expect("worker joins");
        });
    }
}
