//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators, collection/string generators, and
//! the `proptest!` macro surface this workspace uses, on top of a
//! deterministic SplitMix64 stream seeded from the test's module path and
//! case index. Differences from upstream, deliberately accepted for an
//! offline build: no shrinking (a failing case panics with its case index,
//! which is reproducible because seeding is deterministic), and string
//! "regex" strategies support exactly the `[class]{m,n}` shape the tests
//! use rather than full regex syntax.

#![forbid(unsafe_code)]

pub use crate::strategy::{BoxedStrategy, Strategy};
pub use crate::test_runner::{fnv1a, ProptestConfig, TestRng};

/// Deterministic RNG and per-test configuration.
pub mod test_runner {
    /// FNV-1a hash of a string, used to derive a per-test seed from its
    /// module path and name.
    pub fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test identity and case index.
        pub fn deterministic(fn_seed: u64, case: u64) -> TestRng {
            TestRng { state: fn_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            if bound.is_power_of_two() {
                return self.next_u64() & (bound - 1);
            }
            let zone = u64::MAX - (u64::MAX % bound) - 1;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Per-`proptest!`-block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// How many random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }
}

/// The [`Strategy`] trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of value generated.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Keeps only values passing `pred`, retrying up to a bounded
        /// number of times (`whence` names the predicate in the panic).
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, whence, pred }
        }

        /// Builds a second strategy from each generated value.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Object-safe projection of [`Strategy`] so heterogeneous strategies
    /// with one value type can live in a `Vec`.
    pub trait DynStrategy<V> {
        /// Draws one value.
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn DynStrategy<V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.as_ref().generate_dyn(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter '{}' rejected 10000 consecutive values", self.whence);
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among type-erased strategies (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one branch");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let ix = rng.below(self.options.len() as u64) as usize;
            self.options[ix].generate(rng)
        }
    }

    // ----- primitive strategies: ranges ---------------------------------

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    // ----- tuples of strategies -----------------------------------------

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);

    // ----- string pattern strategies ------------------------------------

    /// `&str` strategies interpret the literal as `[class]{m,n}`: a single
    /// character class (ranges like `a-z` plus literal characters) repeated
    /// a uniform number of times in `[m, n]`.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, lo, hi) = parse_class_pattern(self);
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len).map(|_| alphabet[rng.below(alphabet.len() as u64) as usize]).collect()
        }
    }

    fn parse_class_pattern(pat: &str) -> (Vec<char>, usize, usize) {
        let inner = pat
            .strip_prefix('[')
            .and_then(|rest| rest.split_once(']'))
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {pat:?}"));
        let (class, rep) = inner;
        let mut alphabet = Vec::new();
        let chars: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (a, b) = (chars[i], chars[i + 2]);
                assert!(a <= b, "bad char range in {pat:?}");
                for c in a..=b {
                    alphabet.push(c);
                }
                i += 3;
            } else {
                alphabet.push(chars[i]);
                i += 1;
            }
        }
        assert!(!alphabet.is_empty(), "empty character class in {pat:?}");
        let rep = rep
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| panic!("missing {{m,n}} repetition in {pat:?}"));
        let (lo, hi) = rep.split_once(',').unwrap_or((rep, rep));
        let lo: usize = lo.trim().parse().expect("bad repetition lower bound");
        let hi: usize = hi.trim().parse().expect("bad repetition upper bound");
        assert!(lo <= hi, "bad repetition bounds in {pat:?}");
        (alphabet, lo, hi)
    }
}

/// The [`Arbitrary`] trait and [`any`] entry point.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        // Full-bit-pattern doubles (NaNs and infinities included), matching
        // upstream's any::<f64>() spirit; tests filter for finiteness where
        // they need it.
        fn arbitrary(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    macro_rules! arb_tuple {
        ($($name:ident),+) => {
            impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($name::arbitrary(rng),)+)
                }
            }
        };
    }
    arb_tuple!(A);
    arb_tuple!(A, B);
    arb_tuple!(A, B, C);
    arb_tuple!(A, B, C, D);

    /// Strategy produced by [`any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { _marker: std::marker::PhantomData }
    }
}

/// Collection strategies (`vec`, `btree_map`).
pub mod collection {
    use std::collections::BTreeMap;
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Sizes accepted by collection strategies: a fixed count or a range.
    pub trait SizeRange {
        /// Draws a concrete size.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy for `Vec<T>` with a size drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K, V>`; duplicate keys collapse, so the map
    /// may be smaller than the drawn size (matching upstream semantics
    /// loosely — the tests only rely on the size upper bound).
    pub struct BTreeMapStrategy<K, V, R> {
        key: K,
        value: V,
        size: R,
    }

    /// Generates maps with keys from `key` and values from `value`.
    pub fn btree_map<K, V, R>(key: K, value: V, size: R) -> BTreeMapStrategy<K, V, R>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        R: SizeRange,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V, R> Strategy for BTreeMapStrategy<K, V, R>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        R: SizeRange,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| (self.key.generate(rng), self.value.generate(rng))).collect()
        }
    }
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// An index into a collection whose length is only known at use time.
    #[derive(Clone, Copy, Debug)]
    pub struct Index {
        raw: u64,
    }

    impl Index {
        /// Projects the index into `[0, size)`; `size` must be nonzero.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty collection");
            (self.raw % size as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index { raw: rng.next_u64() }
        }
    }
}

/// Everything a proptest-based test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines deterministic property tests.
///
/// Supports the upstream shape used in this workspace: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// arguments are drawn from strategies with `name in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(<$crate::test_runner::ProptestConfig as ::core::default::Default>::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let __seed = $crate::test_runner::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(__seed, __case as u64);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// `assert!` under a name test bodies expect; panics abort the whole test
/// (no shrinking), and the deterministic seeding makes reruns exact.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` under the proptest name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// `assert_ne!` under the proptest name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_shapes() {
        let mut rng = crate::test_runner::TestRng::deterministic(1, 0);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let s = Strategy::generate(&"[a-z_.]{1,16}", &mut rng);
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == '_' || c == '.'));
            let s = Strategy::generate(&"[ -~]{0,32}", &mut rng);
            assert!(s.len() <= 32);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, y in 10usize..=20, z in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((10..=20).contains(&y));
            prop_assert!((-1.0..1.0).contains(&z));
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec(any::<u8>(), 0..10),
            pick in any::<prop::sample::Index>(),
            tag in prop_oneof![(0u32..5).prop_map(|x| x * 2), (10u32..15).prop_map(|x| x + 1)]
        ) {
            prop_assert!(v.len() < 10);
            if !v.is_empty() {
                let _ = v[pick.index(v.len())];
            }
            prop_assert!(tag < 16);
        }

        #[test]
        fn filter_and_flat_map(
            x in any::<f64>().prop_filter("finite", |x| x.is_finite()),
            v in (1usize..5).prop_flat_map(|n| prop::collection::vec(0u32..100, n))
        ) {
            prop_assert!(x.is_finite());
            prop_assert!(!v.is_empty() && v.len() < 5);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic(42, 7);
        let mut b = crate::test_runner::TestRng::deterministic(42, 7);
        let s = prop::collection::vec(0u64..1000, 3..20);
        assert_eq!(Strategy::generate(&s, &mut a), Strategy::generate(&s, &mut b));
    }
}
