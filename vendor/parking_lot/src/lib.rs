//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex`/`Condvar` behind parking_lot's non-poisoning
//! API: `lock()` returns the guard directly, and `Condvar::wait*` take
//! `&mut MutexGuard`. To support the by-`&mut` wait calls over std's
//! by-value ones, the guard holds an `Option<std::sync::MutexGuard>` that
//! the condvar temporarily takes and puts back. Poisoning is ignored
//! (`unwrap_or_else(PoisonError::into_inner)`), matching parking_lot's
//! behaviour of not propagating panics through locks.

#![forbid(unsafe_code)]

use std::sync::{self, PoisonError};
use std::time::{Duration, Instant};

/// A mutual-exclusion lock whose `lock()` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; releases the lock on drop.
pub struct MutexGuard<'a, T> {
    // Always `Some` outside of a Condvar wait; `Option` only so the condvar
    // can hand the inner guard to `std::sync::Condvar::wait` by value.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard active")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard active")
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable with parking_lot's `&mut guard` calling convention.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Condvar {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard active");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard active");
        let (g, res) =
            self.inner.wait_timeout(g, timeout).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }

    /// Blocks until notified or the wall-clock `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if deadline <= now {
            return WaitTimeoutResult { timed_out: true };
        }
        self.wait_for(guard, deadline - now)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
        let res = cv.wait_until(&mut g, Instant::now() - Duration::from_millis(1));
        assert!(res.timed_out());
    }
}
