//! Offline stand-in for the `bytes` crate.
//!
//! Provides cheaply cloneable, shareable byte buffers with the subset of the
//! upstream API the workspace uses: [`Bytes`] (shared immutable view),
//! [`BytesMut`] (growable builder), and the [`Buf`]/[`BufMut`] traits with
//! little-endian integer accessors. A [`Bytes`] is an `Arc`-shared owner plus
//! an `(offset, len)` window, so `slice`/`split_to`/`clone` never copy, and
//! `from_owner` preserves the owner's allocation (and therefore its
//! alignment), which the adios `Value` payload path relies on.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
#[derive(Clone)]
pub struct Bytes {
    owner: Arc<dyn AsRef<[u8]> + Send + Sync>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::from_static(&[])
    }

    /// Wraps a static slice without copying.
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes { owner: Arc::new(s), off: 0, len: s.len() }
    }

    /// Copies `s` into a fresh buffer.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// Wraps an arbitrary owner, viewing exactly `owner.as_ref()`. The
    /// owner's allocation (and alignment) is preserved for the lifetime of
    /// every view derived from this buffer.
    pub fn from_owner<T>(owner: T) -> Bytes
    where
        T: AsRef<[u8]> + Send + Sync + 'static,
    {
        let len = owner.as_ref().len();
        Bytes { owner: Arc::new(owner), off: 0, len }
    }

    fn as_slice(&self) -> &[u8] {
        &(*self.owner).as_ref()[self.off..self.off + self.len]
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a sub-view sharing the same owner (no copy).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end && end <= self.len, "slice {start}..{end} out of range for {}", self.len);
        Bytes { owner: Arc::clone(&self.owner), off: self.off + start, len: end - start }
    }

    /// Splits off and returns the first `n` bytes, advancing `self` past them.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len, "split_to({n}) out of range for {}", self.len);
        let head = Bytes { owner: Arc::clone(&self.owner), off: self.off, len: n };
        self.off += n;
        self.len -= n;
        head
    }

    /// Copies the view into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes { owner: Arc::new(v), off: 0, len }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

/// A growable byte builder; freeze it into [`Bytes`] when done.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Converts the builder into an immutable shared buffer.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read cursor over a byte source; all multi-byte reads are little-endian.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `n` bytes.
    fn advance(&mut self, n: usize);

    /// Reads `N` bytes into an array, advancing past them.
    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(self.remaining() >= N, "buffer exhausted: need {N}, have {}", self.remaining());
        let mut out = [0u8; N];
        out.copy_from_slice(&self.chunk()[..N]);
        self.advance(N);
        out
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }
    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_array())
    }
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }
    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take_array())
    }
    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len, "advance({n}) out of range for {}", self.len);
        self.off += n;
        self.len -= n;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Append sink for bytes; all multi-byte writes are little-endian.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, s: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Writes a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Writes a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Writes a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Writes a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Writes a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_integers() {
        let mut b = BytesMut::with_capacity(64);
        b.put_u8(0xAB);
        b.put_u16_le(0x1234);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(0x0102_0304_0506_0708);
        b.put_i64_le(-42);
        b.put_f64_le(1.5);
        b.put_slice(b"xyz");
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.as_ref(), b"xyz");
        assert_eq!(r.remaining(), 3);
    }

    #[test]
    fn slice_and_split_share_without_copy() {
        let base = Bytes::from(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let mid = base.slice(2..6);
        assert_eq!(mid.as_ref(), &[2, 3, 4, 5]);
        let mut rest = base.slice(4..);
        let head = rest.split_to(2);
        assert_eq!(head.as_ref(), &[4, 5]);
        assert_eq!(rest.as_ref(), &[6, 7]);
        assert_eq!(base.len(), 8);
    }

    #[test]
    fn from_owner_preserves_alignment() {
        struct Owner(Vec<u64>);
        impl AsRef<[u8]> for Owner {
            fn as_ref(&self) -> &[u8] {
                unsafe { std::slice::from_raw_parts(self.0.as_ptr() as *const u8, self.0.len() * 8) }
            }
        }
        let b = Bytes::from_owner(Owner(vec![1, 2, 3]));
        assert_eq!(b.len(), 24);
        assert_eq!(b.as_ptr().align_offset(8), 0);
    }

    #[test]
    fn equality_and_to_vec() {
        let a = Bytes::from_static(b"hello");
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(a, b);
        assert_eq!(a.to_vec(), b"hello".to_vec());
        assert_eq!(a.slice(..0).len(), 0);
        assert!(a.slice(5..).is_empty());
    }
}
