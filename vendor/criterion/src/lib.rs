//! Offline stand-in for the `criterion` crate.
//!
//! Supports the subset of the criterion 0.5 API the bench targets use:
//! `Criterion::default().sample_size(..)`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`, and
//! the `criterion_group!`/`criterion_main!` macros. Each benchmark closure
//! runs a small fixed number of timed iterations and prints the mean —
//! enough to exercise the code paths and give a rough number, with none of
//! upstream's statistics, warm-up, or HTML reports.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _criterion: self }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), self.sample_size, f);
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { label: format!("{}/{}", function.into(), parameter) }
    }

    /// Just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Declares what one iteration processes, for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Records the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, _throughput: Throughput) {}

    /// Runs a named benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name.into()), self.sample_size, f);
    }

    /// Runs a parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.label), self.sample_size, |b| f(b, input));
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher { elapsed: Duration::ZERO, iters: sample_size as u64 };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
    println!("bench {label}: {:.3} ms/iter ({} iters)", per_iter * 1e3, b.iters);
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn touches_everything(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(64));
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| x + 1)
        });
        group.finish();
        c.bench_function("top", |b| b.iter(|| black_box(2 * 2)));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = touches_everything
    }

    #[test]
    fn group_macro_runs() {
        benches();
    }
}
