//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::channel::{unbounded, Sender,
//! Receiver}`; this stub backs them with `std::sync::mpsc`, wrapping the
//! sender in an `Arc<Mutex<..>>`-free clonable handle (std's `Sender` is
//! already clonable) and mirroring crossbeam's error types.

#![forbid(unsafe_code)]

/// Multi-producer channels (subset of `crossbeam-channel`).
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like upstream, Debug does not require `T: Debug`.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty.
        Empty,
        /// All senders disconnected and the channel drained.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        tx: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { tx: self.tx.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, failing only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.tx.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.rx.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.rx.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { tx }, Receiver { rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_across_clones() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }
    }
}
