//! Reproduction suite umbrella crate (integration tests + examples live here).
pub use iocontainers;
