#!/usr/bin/env bash
# CI gate: build, tests, clippy, and the simlint determinism pass.
# Every step must pass; the script stops at the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release

echo "== tests (workspace) =="
cargo test -q --workspace

echo "== clippy (workspace, all targets, deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== simlint determinism pass =="
cargo xtask lint

echo "== benches compile =="
cargo bench --no-run

echo "== bench-baseline: kernel perf artifact emits and validates =="
# A tiny snapshot keeps this gate fast; the schema check (non-empty rows,
# serial speedup ~1 vs itself) is hardware-independent by design.
cargo run --release -p bench --bin baseline -- \
    --out target/BENCH_kernels.json --cells 3 --threads 1,2 --reps 2
cargo run --release -p bench --bin baseline -- --check target/BENCH_kernels.json
cargo run --release -p bench --bin baseline -- --check BENCH_kernels.json

echo "== quickstart example (headless) =="
cargo run --release --example quickstart

echo "== fault recovery example (headless, asserts the recovery invariants) =="
cargo run --release --example fault_recovery

echo "ci: all gates passed"
