#!/usr/bin/env bash
# CI gate: build, tests, clippy, and the simlint determinism pass.
# Every step must pass; the script stops at the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release

echo "== tests (workspace) =="
cargo test -q --workspace

echo "== clippy (workspace, all targets, deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== simlint determinism pass =="
cargo xtask lint

echo "== benches compile =="
cargo bench --no-run

echo "== quickstart example (headless) =="
cargo run --release --example quickstart

echo "ci: all gates passed"
