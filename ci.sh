#!/usr/bin/env bash
# CI gate: build, tests, clippy, the simlint static pass (plus its JSON
# artifact), the loom model-check job, and a Miri pass over the core
# crates. Every step must pass; the script stops at the first failure.
#
# Knobs:
#   CI_SKIP_MIRI=1  skip the Miri step explicitly (it also auto-skips
#                   when the nightly Miri component is unavailable, e.g.
#                   in offline containers).
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release

echo "== tests (workspace) =="
cargo test -q --workspace

echo "== clippy (workspace, all targets, deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== public-API snapshot: iocontainers facade vs committed baseline =="
cargo xtask api

echo "== simlint v3 static pass (call-graph stats, baseline gate, JSON artifact) =="
cargo xtask lint --stats
mkdir -p target/ci
# Gate on the committed (empty) baseline: any unescaped finding is new
# and fails the build. Regenerate with `cargo xtask lint --write-baseline
# SIMLINT_BASELINE.json` and commit the file when the surface moves.
cargo xtask lint --format json --baseline SIMLINT_BASELINE.json > target/ci/simlint-findings.json
echo "simlint: artifact at target/ci/simlint-findings.json"

echo "== loom model check: datatap channel pause/resume protocol =="
# Swaps the channel's mutex/condvar for the loom stand-in (bounded seeded
# preemption search — failures are real, passes are probabilistic).
RUSTFLAGS="--cfg loom" cargo test -q -p datatap --test loom_channel

echo "== miri: sim-core + simpar + datatap + stream (undefined-behaviour pass) =="
if [[ "${CI_SKIP_MIRI:-0}" == "1" ]]; then
    echo "miri: skipped (CI_SKIP_MIRI=1)"
elif cargo +nightly miri --version >/dev/null 2>&1; then
    cargo +nightly miri test -q -p sim-core -p simpar -p datatap
    # The stream engine's unit suite is Miri-friendly (no file I/O);
    # the lib filter keeps the FS-touching source tests out.
    cargo +nightly miri test -q -p stream --lib engine
else
    # Offline containers cannot `rustup component add miri`; the step
    # degrades to a loud skip rather than failing the gate.
    echo "miri: skipped (nightly Miri component unavailable)"
fi

echo "== benches compile =="
cargo bench --no-run

echo "== bench-baseline: kernel perf artifact emits and validates =="
# A tiny snapshot keeps this gate fast; the schema check (non-empty rows,
# serial speedup ~1 vs itself) is hardware-independent by design.
cargo run --release -p bench --bin baseline -- \
    --out target/BENCH_kernels.json --cells 3 --threads 1,2 --reps 2
cargo run --release -p bench --bin baseline -- --check target/BENCH_kernels.json
cargo run --release -p bench --bin baseline -- --check BENCH_kernels.json

echo "== bench-events: event-kernel throughput artifact emits and validates =="
# Same shape for the event-kernel artifact: emit at tiny sizes to prove
# the emitter works, schema-check both the fresh and the committed file.
cargo run --release -p bench --bin events -- \
    --out target/BENCH_events.json --sizes 1000,10000 --reps 2
cargo run --release -p bench --bin events -- --check target/BENCH_events.json
cargo run --release -p bench --bin events -- --check BENCH_events.json

echo "== bench-diff: events/sec vs the committed baseline (auto-skips when throttled) =="
cargo xtask bench-diff

echo "== quickstart example (headless) =="
cargo run --release --example quickstart

echo "== fault recovery example (headless, asserts the recovery invariants) =="
cargo run --release --example fault_recovery

echo "== multi-tenant example (24 tenants, managed vs unmanaged) =="
cargo run --release --example multi_tenant

echo "== stream fan-out example (N-to-M streaming, restart rejoin, file parity) =="
cargo run --release --example stream_fanout

echo "ci: all gates passed"
